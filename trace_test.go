package gqr

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"gqr/internal/trace"
)

// TestTraceStatsAcrossMethods verifies, for every querying method,
// that a traced query's flight record reconciles with its SearchStats:
// stage durations are non-negative and sum to (at most) the total, the
// span work counters add up to the §2.2 counters, and the profile
// times are derived from the very same stage clock.
func TestTraceStatsAcrossMethods(t *testing.T) {
	ds := demoData(t)
	for _, method := range []QueryMethod{HR, QR, GHR, GQR, MIH} {
		ix, err := Build(ds.Vectors, ds.Dim,
			WithQueryMethod(method), WithSeed(31), WithTracing(1))
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		rec := ix.TraceRecorder()
		if rec == nil {
			t.Fatalf("%s: tracing enabled but no recorder", method)
		}
		for qi := 0; qi < ds.NQ(); qi++ {
			_, st, err := ix.SearchWithStats(ds.Query(qi), 5, WithMaxCandidates(100), WithProfile())
			if err != nil {
				t.Fatalf("%s: %v", method, err)
			}
			traces := rec.Traces()
			if len(traces) == 0 {
				t.Fatalf("%s: no trace captured", method)
			}
			tr := traces[0] // newest first
			if tr.Method != string(method) {
				t.Fatalf("trace method %q, want %q", tr.Method, method)
			}
			if tr.Total <= 0 {
				t.Fatalf("%s: total %v", method, tr.Total)
			}
			for i := 0; i < trace.NumStages; i++ {
				if tr.StageDur[i] < 0 {
					t.Fatalf("%s: stage %s duration %v < 0", method, trace.Stage(i), tr.StageDur[i])
				}
			}
			if sum := tr.StageSum(); sum <= 0 || sum > tr.Total {
				t.Fatalf("%s: stage sum %v outside (0, total %v]", method, sum, tr.Total)
			}
			// Span work counters reconcile with the search's stats.
			if got := int(tr.StageWork[trace.StageProbe].Buckets); got != st.BucketsGenerated {
				t.Fatalf("%s: probe-span buckets %d != generated %d", method, got, st.BucketsGenerated)
			}
			if got := int(tr.StageWork[trace.StageProbe].Probed); got != st.BucketsProbed {
				t.Fatalf("%s: probe-span probed %d != %d", method, got, st.BucketsProbed)
			}
			if got := int(tr.StageWork[trace.StageGather].Candidates); got != st.Candidates {
				t.Fatalf("%s: gather-span candidates %d != %d", method, got, st.Candidates)
			}
			if got := int(tr.StageWork[trace.StageEvaluate].Abandoned); got != st.EarlyAbandoned {
				t.Fatalf("%s: evaluate-span abandoned %d != %d", method, got, st.EarlyAbandoned)
			}
			// Totals copied from the final stats.
			want := trace.Totals{
				K: 5, Budget: 100,
				BucketsGenerated: st.BucketsGenerated,
				BucketsProbed:    st.BucketsProbed,
				Candidates:       st.Candidates,
				EarlyAbandoned:   st.EarlyAbandoned,
				EarlyStopped:     st.EarlyStopped,
			}
			if tr.Totals != want {
				t.Fatalf("%s: trace totals %+v != %+v", method, tr.Totals, want)
			}
			// Satellite: Profile times come from the same stage clock.
			if st.RetrievalTime != tr.StageDur[trace.StageSequence]+tr.StageDur[trace.StageProbe] {
				t.Fatalf("%s: retrieval %v != sequence+probe %v", method,
					st.RetrievalTime, tr.StageDur[trace.StageSequence]+tr.StageDur[trace.StageProbe])
			}
			if st.EvaluationTime != tr.StageDur[trace.StageGather]+tr.StageDur[trace.StageEvaluate] {
				t.Fatalf("%s: evaluation %v != gather+evaluate %v", method,
					st.EvaluationTime, tr.StageDur[trace.StageGather]+tr.StageDur[trace.StageEvaluate])
			}
			// Single-index pipeline spans: snapshot and preprocess marks
			// exist, and no shard spans do.
			if tr.StageCount[trace.StageSnapshot] != 1 || tr.StageCount[trace.StagePreprocess] != 1 {
				t.Fatalf("%s: snapshot/preprocess counts %d/%d", method,
					tr.StageCount[trace.StageSnapshot], tr.StageCount[trace.StagePreprocess])
			}
			if tr.StageCount[trace.StageShard] != 0 {
				t.Fatalf("%s: unsharded trace has shard spans", method)
			}
		}
		st := rec.Stats()
		if st.Queries != uint64(ds.NQ()) || st.Captured != uint64(ds.NQ()) {
			t.Fatalf("%s: recorder %+v, want %d queries all captured", method, st, ds.NQ())
		}
	}
}

// TestTraceBatchAndChromeExport checks that batch searches trace each
// query individually — plus one "batch" record for the shared
// preprocessing (the StageBatch lane) — and the captured set exports as
// Chrome JSON.
func TestTraceBatchAndChromeExport(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(32), WithTracing(1), WithTraceBuffer(128))
	if err != nil {
		t.Fatal(err)
	}
	flat := make([]float32, 0, ds.NQ()*ds.Dim)
	for qi := 0; qi < ds.NQ(); qi++ {
		flat = append(flat, ds.Query(qi)...)
	}
	results, err := ix.SearchBatchWithStats(flat, 4, WithMaxCandidates(80))
	if err != nil {
		t.Fatal(err)
	}
	for qi, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", qi, r.Err)
		}
	}
	rec := ix.TraceRecorder()
	if got := rec.Stats().Captured; got != uint64(ds.NQ())+1 {
		t.Fatalf("captured %d traces, want one per batch query plus the batch record (%d)", got, ds.NQ()+1)
	}
	var batchRecs int
	for _, tr := range rec.Traces() {
		if tr.Method != "batch" {
			continue
		}
		batchRecs++
		if tr.StageCount[trace.StageBatch] == 0 {
			t.Fatal("batch record has no StageBatch span")
		}
		if tr.Totals.Candidates != ds.NQ() {
			t.Fatalf("batch record totals %d queries, want %d", tr.Totals.Candidates, ds.NQ())
		}
	}
	if batchRecs != 1 {
		t.Fatalf("captured %d batch records, want 1", batchRecs)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, rec.Traces()...); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || buf.Bytes()[0] != '{' {
		t.Fatalf("chrome export looks wrong: %q", buf.String()[:min(buf.Len(), 40)])
	}
}

// TestShardedTraceAttribution checks the fan-out attribution surface:
// merged stats name the slowest shard, SearchWithShardStats returns the
// per-shard breakdown, and a captured trace carries one shard span per
// leg plus the legs' re-based pipeline spans.
func TestShardedTraceAttribution(t *testing.T) {
	ds := demoData(t)
	const shards = 3
	sharded, err := BuildSharded(ds.Vectors, ds.Dim, shards, WithSeed(33), WithTracing(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, shard := range sharded.shards {
		if shard.TraceRecorder() != nil {
			t.Fatal("shard carries its own recorder; the fan-out must own the only one")
		}
	}
	rec := sharded.TraceRecorder()
	if rec == nil {
		t.Fatal("sharded recorder missing")
	}
	for qi := 0; qi < ds.NQ(); qi++ {
		q := ds.Query(qi)
		nbrs, st, per, err := sharded.SearchWithShardStats(q, 5, WithMaxCandidates(60))
		if err != nil {
			t.Fatal(err)
		}
		if len(nbrs) == 0 {
			t.Fatalf("query %d: no neighbors", qi)
		}
		if st.ShardCount != shards {
			t.Fatalf("query %d: ShardCount %d, want %d", qi, st.ShardCount, shards)
		}
		if st.SlowestShardTime <= 0 || st.SlowestShard < 0 || st.SlowestShard >= shards {
			t.Fatalf("query %d: slowest shard %d/%v", qi, st.SlowestShard, st.SlowestShardTime)
		}
		if len(per) != shards {
			t.Fatalf("query %d: %d shard stats", qi, len(per))
		}
		var sum SearchStats
		var slowest time.Duration
		for i, ps := range per {
			if ps.Shard != i || ps.Err != "" {
				t.Fatalf("query %d: shard stat %+v", qi, ps)
			}
			if ps.Duration <= 0 {
				t.Fatalf("query %d: shard %d duration %v", qi, i, ps.Duration)
			}
			sum.merge(ps.Stats)
			if ps.Duration > slowest {
				slowest = ps.Duration
			}
		}
		if workOf(st) != workOf(sum) {
			t.Fatalf("query %d: merged %+v != shard sum %+v", qi, workOf(st), workOf(sum))
		}
		if st.SlowestShardTime != slowest {
			t.Fatalf("query %d: slowest %v != max leg %v", qi, st.SlowestShardTime, slowest)
		}
		// SearchWithShardStats and SearchWithStats trace alike; the
		// newest capture covers the call above.
		tr := rec.Traces()[0]
		if got := int(tr.StageCount[trace.StageShard]); got != shards {
			t.Fatalf("query %d: %d shard spans, want %d", qi, got, shards)
		}
		// Shard-tagged pipeline spans were re-based into the parent.
		tagged := map[int32]bool{}
		for _, sp := range tr.Spans {
			if sp.Start < 0 {
				t.Fatalf("query %d: span starts before parent begin: %+v", qi, sp)
			}
			if sp.Shard >= 0 && sp.Stage != trace.StageShard {
				tagged[sp.Shard] = true
			}
		}
		if len(tagged) != shards {
			t.Fatalf("query %d: pipeline spans tagged for %d shards, want %d", qi, len(tagged), shards)
		}
		if tr.Totals.Candidates != st.Candidates {
			t.Fatalf("query %d: trace totals %d candidates, stats %d", qi, tr.Totals.Candidates, st.Candidates)
		}
	}
}

// TestLoadWithTracingOptions checks that a restored index can be
// equipped with a flight recorder at load time.
func TestLoadWithTracingOptions(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(34))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, ds.Vectors, ds.Dim, WithTracing(1))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TraceRecorder() == nil {
		t.Fatal("loaded index has no recorder despite WithTracing")
	}
	if _, _, err := loaded.SearchWithStats(ds.Query(0), 5, WithMaxCandidates(50)); err != nil {
		t.Fatal(err)
	}
	if got := loaded.TraceRecorder().Stats().Captured; got != 1 {
		t.Fatalf("captured %d traces after one query", got)
	}
}

// TestPublicSearchAllocs is the disabled-path allocation gate at the
// public API: with tracing off, a warmed SearchWithStats allocates only
// its result slices (the trace plumbing must stay allocation-free).
func TestPublicSearchAllocs(t *testing.T) {
	if raceEnabled {
		// The race runtime randomly drops sync.Pool puts (to surface
		// reuse races), so the pooled searcher scratch re-allocates
		// nondeterministically and AllocsPerRun is meaningless here.
		t.Skip("allocation counts are nondeterministic under -race")
	}
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(35))
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Query(0)
	// Warm the snapshot pool's searcher scratch.
	for i := 0; i < 3; i++ {
		if _, _, err := ix.SearchWithStats(q, 10, WithMaxCandidates(1000)); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := ix.SearchWithStats(q, 10, WithMaxCandidates(1000)); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 4
	if allocs > budget {
		t.Fatalf("SearchWithStats allocs/op = %.1f, budget %d", allocs, budget)
	}
}

// TestTraceStressRoot races traced searches, Adds and recorder readers
// on both the single and the sharded index — the root-level -race
// exercise behind `make trace-stress`.
func TestTraceStressRoot(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(36),
		WithTracing(2), WithSlowQueryThreshold(time.Nanosecond), WithTraceBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := BuildSharded(ds.Vectors, ds.Dim, 3, WithSeed(37), WithTracing(2))
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 4, 100
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := ds.Query((w + i) % ds.NQ())
				if _, _, err := ix.SearchWithStats(q, 3, WithMaxCandidates(60)); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := sharded.SearchWithStats(q, 3, WithMaxCandidates(40)); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					if _, err := ix.Add(q); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var sink bytes.Buffer
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tr := range ix.TraceRecorder().Traces() {
				_ = tr.Summary()
			}
			sink.Reset()
			_ = trace.WriteChrome(&sink, sharded.TraceRecorder().Traces()...)
		}
	}()
	// Writers finish, then the reader is told to stop.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		st := ix.TraceRecorder().Stats()
		if st.Queries >= workers*perWorker {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	st := ix.TraceRecorder().Stats()
	if st.Queries != workers*perWorker || st.Captured == 0 {
		t.Fatalf("recorder %+v after stress", st)
	}
	if sst := sharded.TraceRecorder().Stats(); sst.Queries != workers*perWorker {
		t.Fatalf("sharded recorder %+v after stress", sst)
	}
}
