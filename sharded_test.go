package gqr

import (
	"strings"
	"testing"
)

func TestShardedMatchesSingleExact(t *testing.T) {
	ds := demoData(t)
	sharded, err := BuildSharded(ds.Vectors, ds.Dim, 4, WithSeed(41))
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Shards() != 4 {
		t.Fatalf("shards = %d", sharded.Shards())
	}
	for qi := 0; qi < ds.NQ(); qi++ {
		nbrs, err := sharded.Search(ds.Query(qi), 10) // unbudgeted: exact
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ds.GroundTruth[qi] {
			if nbrs[i].ID != int(id) {
				t.Fatalf("query %d: sharded results %v != ground truth %v", qi, nbrs, ds.GroundTruth[qi])
			}
		}
	}
}

func TestShardedGlobalIDs(t *testing.T) {
	ds := demoData(t)
	sharded, err := BuildSharded(ds.Vectors, ds.Dim, 3, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	// Query with an exact copy of a vector that lives in the LAST
	// shard: its global id must come back first.
	target := ds.N() - 1
	nbrs, err := sharded.Search(ds.Vector(target), 1)
	if err != nil {
		t.Fatal(err)
	}
	if nbrs[0].ID != target || nbrs[0].Distance != 0 {
		t.Fatalf("got %v, want id %d at distance 0", nbrs, target)
	}
}

func TestShardedStatsAndValidation(t *testing.T) {
	ds := demoData(t)
	sharded, err := BuildSharded(ds.Vectors, ds.Dim, 2, WithAlgorithm(PCAH))
	if err != nil {
		t.Fatal(err)
	}
	stats := sharded.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats for %d shards", len(stats))
	}
	total := 0
	for _, s := range stats {
		if s.Algorithm != PCAH {
			t.Fatal("shard lost its configuration")
		}
		total += s.Items
	}
	if total != ds.N() {
		t.Fatalf("shards hold %d items, want %d", total, ds.N())
	}
	if _, err := BuildSharded(ds.Vectors, ds.Dim, 0); err == nil {
		t.Fatal("zero shards must be rejected")
	}
	if _, err := BuildSharded(ds.Vectors, 7, 2); err == nil {
		t.Fatal("bad dim must be rejected")
	}
	if _, err := sharded.Search(ds.Query(0)[:3], 5); err == nil {
		t.Fatal("bad query dim must be rejected")
	}
}

func TestShardedMoreShardsThanItems(t *testing.T) {
	vecs := make([]float32, 4*8) // 4 items
	for i := range vecs {
		vecs[i] = float32(i)
	}
	// Too few vectors for the requested fan-out must be an explicit
	// error, not a silent clamp — Shards() is a capacity contract.
	if _, err := BuildSharded(vecs, 8, 100, WithCodeLength(2)); err == nil {
		t.Fatal("100 shards over 4 items must be rejected, not clamped")
	} else if !strings.Contains(err.Error(), "cannot fill") {
		t.Fatalf("unhelpful shard-capacity error: %v", err)
	}
	// The largest count the corpus can fill still builds and answers.
	sharded, err := BuildSharded(vecs, 8, 2, WithCodeLength(2))
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Shards() != 2 {
		t.Fatalf("shards = %d, want exactly the 2 requested", sharded.Shards())
	}
	nbrs, err := sharded.Search(vecs[8:16], 2)
	if err != nil {
		t.Fatal(err)
	}
	if nbrs[0].ID != 1 || nbrs[0].Distance != 0 {
		t.Fatalf("sharded search wrong: %v", nbrs)
	}
}
