package gqr

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gqr/internal/hash"
	"gqr/internal/index"
	"gqr/internal/quantization"
	"gqr/internal/query"
	"gqr/internal/trace"
	"gqr/internal/vecmath"
)

// ErrNotFound reports a lifecycle operation against an id that does not
// exist or has already been deleted. Match with errors.Is.
var ErrNotFound = errors.New("gqr: vector not found")

// ErrDimension reports a vector whose dimension does not match the
// index's. Match with errors.Is.
var ErrDimension = errors.New("gqr: dimension mismatch")

// Neighbor is one search result: an item id (the row index of the
// vector in the build block) and its exact Euclidean distance to the
// query.
type Neighbor struct {
	ID       int
	Distance float64
}

// SearchStats reports the work one search performed, in the paper's
// §2.2 units: buckets generated (probe-sequence emissions, including
// codes that hashed to empty buckets), buckets probed (non-empty
// buckets evaluated), and candidates (distinct items whose exact
// distance was computed — the paper's "# retrieved items", Figure 8).
// RetrievalTime and EvaluationTime split the query between deciding
// which buckets to probe and computing exact distances; they are only
// populated when WithProfile is set. For a ShardedIndex the counters
// are sums over shards and EarlyStopped reports whether any shard's
// QD lower-bound rule fired.
type SearchStats struct {
	BucketsGenerated int `json:"bucketsGenerated"`
	BucketsProbed    int `json:"bucketsProbed"`
	Candidates       int `json:"candidates"`
	// EarlyAbandoned counts candidates whose exact-distance computation
	// was cut short by the bounded evaluation kernel because a partial
	// sum already exceeded the current k-th-best distance. Those items
	// are included in Candidates; the counter shows how much evaluation
	// work early abandonment saved.
	EarlyAbandoned int `json:"earlyAbandoned"`
	// Filtered counts gathered ids dropped before evaluation —
	// tombstoned items plus items rejected by WithFilter/WithTagMask.
	// They are not included in Candidates: a dropped id costs a bitmap
	// test (and possibly a predicate call), never a distance
	// computation.
	Filtered int `json:"filtered,omitempty"`
	// ADCScored counts candidates scored by the quantized re-ranking
	// stage's ADC table; Reranked counts the survivors handed to exact
	// evaluation (those survivors are what Candidates counts as
	// evaluated work). Both zero when the index has no reranker.
	ADCScored      int           `json:"adcScored,omitempty"`
	Reranked       int           `json:"reranked,omitempty"`
	EarlyStopped   bool          `json:"earlyStopped"`
	RetrievalTime  time.Duration `json:"retrievalTime"`
	EvaluationTime time.Duration `json:"evaluationTime"`
	// ShardCount, SlowestShard and SlowestShardTime attribute sharded
	// fan-out latency: on a ShardedIndex query they report how many
	// shards answered, which shard's leg took longest, and that leg's
	// wall time (the fan-out's critical path). All zero on a
	// single-index search; see ShardedIndex.SearchWithShardStats for
	// the full per-shard breakdown.
	ShardCount       int           `json:"shardCount,omitempty"`
	SlowestShard     int           `json:"slowestShard,omitempty"`
	SlowestShardTime time.Duration `json:"slowestShardTime,omitempty"`
}

// Merge accumulates another search's work counters into s: counts and
// stage times add up, EarlyStopped ORs. The shard-attribution fields
// (ShardCount, SlowestShard*) are left untouched — they describe one
// fan-out, not a sum. Use it for cumulative accounting over many
// queries, e.g. totalling a batch's work.
func (s *SearchStats) Merge(o SearchStats) { s.merge(o) }

// merge accumulates another search's work into s (used by the sharded
// index and by cumulative per-batch accounting).
func (s *SearchStats) merge(o SearchStats) {
	s.BucketsGenerated += o.BucketsGenerated
	s.BucketsProbed += o.BucketsProbed
	s.Candidates += o.Candidates
	s.EarlyAbandoned += o.EarlyAbandoned
	s.Filtered += o.Filtered
	s.ADCScored += o.ADCScored
	s.Reranked += o.Reranked
	s.EarlyStopped = s.EarlyStopped || o.EarlyStopped
	s.RetrievalTime += o.RetrievalTime
	s.EvaluationTime += o.EvaluationTime
}

// statsOf converts the internal per-query stats to the public type.
func statsOf(st query.Stats) SearchStats {
	return SearchStats{
		BucketsGenerated: st.BucketsGenerated,
		BucketsProbed:    st.BucketsProbed,
		Candidates:       st.Candidates,
		EarlyAbandoned:   st.EarlyAbandoned,
		Filtered:         st.Filtered,
		ADCScored:        st.ADCScored,
		Reranked:         st.Reranked,
		EarlyStopped:     st.EarlyStopped,
		RetrievalTime:    st.RetrievalTime,
		EvaluationTime:   st.EvaluationTime,
	}
}

// snapshot is one published, immutable read view of the index: the
// bucket structure as of its publication, the querying method bound to
// that structure, and the Theorem 2 early-stop scale. Searches load the
// current snapshot atomically and work only on it, so they never
// contend with each other or with Add. The per-snapshot pool hands out
// query.Searcher scratch — visited-epoch array, angular qbuf, per-table
// probe-sequence buffers, top-k heap and the evaluation-stage gather
// buffer — keyed to this snapshot's generation, so a warmed pooled
// search allocates nothing beyond its result slices; when a new
// snapshot is published the old pool is simply garbage.
type snapshot struct {
	view   *index.Index
	method query.Method
	mu     float64 // Theorem 2 scale for early stop (0 when unavailable)
	gen    uint64
	pool   sync.Pool
}

// searcher returns pooled per-goroutine scratch bound to this snapshot.
func (s *snapshot) searcher() *query.Searcher {
	if v := s.pool.Get(); v != nil {
		return v.(*query.Searcher)
	}
	return query.NewSearcher(s.view, s.method)
}

// release returns scratch to the snapshot's pool.
func (s *snapshot) release(sr *query.Searcher) { s.pool.Put(sr) }

// Index is a learned-hash ANN index over a set of vectors. An Index is
// safe for concurrent use: any number of Search, SearchWithStats and
// SearchBatch calls may run alongside Add (and each other). Readers
// work on an immutable snapshot swapped atomically by writers, so the
// query hot path takes no lock; see Add for the visibility contract.
type Index struct {
	metric     Metric
	methodName string
	muScale    float64 // Theorem 2 scale, derived from the immutable hashers

	// snap is the published read view. Search paths load it atomically
	// and never touch the writer-owned state below.
	snap atomic.Pointer[snapshot]

	// writeMu serializes mutators: Add, Save and snapshot publication.
	writeMu sync.Mutex
	// live is the writer-owned mutable index; guarded by writeMu. Its
	// delta tails are never read by searches (they read snap's frozen
	// views: shared CSR cores plus cloned tails).
	live *index.Index
	// stale marks that live has Adds not yet in the published snapshot;
	// the next search republishes before probing.
	stale atomic.Bool

	// sealEvery is the memtable size at which Add seals it into a new
	// frozen segment (O(sealEvery) inline, amortized O(1) per Add).
	sealEvery int
	// mergeBarrier is the id below which segments are never merged: the
	// durability layer's base file covers [0, mergeBarrier), so those
	// segments need no files of their own. Guarded by writeMu.
	mergeBarrier int
	// dur is the durability state (WAL writer, data dir); nil until
	// EnableDurability/Recover. Guarded by writeMu.
	dur *durability
	// persistErr records the first background persistence failure; it is
	// surfaced by Close and Compact. Guarded by writeMu.
	persistErr error
	// closed stops new background work; bg waits for in-flight work
	// (segment persists, merges). merging/bgN guarded by writeMu.
	closed  bool
	merging bool
	bgN     int
	bg      sync.WaitGroup
	// compactObs, when set, observes every applied merge (the metrics
	// layer feeds a merge-duration histogram from it). Guarded by
	// writeMu for writes; invoked outside the lock.
	compactObs func(CompactionInfo)

	// Lifecycle instrumentation surfaced through Stats: how long Build
	// took, how many vectors Add appended, how often a new snapshot was
	// published because of those Adds, and the generation counter.
	buildTime      time.Duration
	adds           atomic.Int64
	deletes        atomic.Int64
	methodRebuilds atomic.Int64
	gen            atomic.Uint64

	// rec is the query flight recorder; nil unless tracing was enabled
	// at construction (WithTracing / WithSlowQueryThreshold). Immutable
	// after construction, so the hot path reads it without atomics.
	rec *trace.Recorder
}

// recorderOf builds the flight recorder an index configuration asks
// for, or nil when tracing is off.
func recorderOf(cfg config) *trace.Recorder {
	if cfg.traceSample <= 0 && cfg.slowQuery <= 0 {
		return nil
	}
	return trace.NewRecorder(trace.Config{
		SampleEvery: cfg.traceSample,
		SlowQuery:   cfg.slowQuery,
		Capacity:    cfg.traceCapacity,
	})
}

// TraceRecorder returns the index's flight recorder, or nil when
// tracing was not enabled at construction. The recorder is safe for
// concurrent use alongside searches.
func (ix *Index) TraceRecorder() *trace.Recorder { return ix.rec }

// Build trains hash functions on the n×dim row-major block vectors
// (n = len(vectors)/dim) and indexes every row. The block is retained
// by reference for evaluation; do not mutate it afterwards.
func Build(vectors []float32, dim int, opts ...Option) (*Index, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if dim <= 0 || len(vectors) == 0 || len(vectors)%dim != 0 {
		return nil, fmt.Errorf("gqr: vector block length %d not a positive multiple of dim %d", len(vectors), dim)
	}
	buildStart := time.Now()
	n := len(vectors) / dim
	if cfg.metric == Angular {
		normalized := make([]float32, len(vectors))
		copy(normalized, vectors)
		for i := 0; i < n; i++ {
			normalizeRow(normalized[i*dim : (i+1)*dim])
		}
		vectors = normalized
	}
	bits := cfg.bits
	if bits == 0 {
		bits = index.CodeLengthFor(n, cfg.expected)
		if cfg.algorithm == KMH && bits%2 != 0 {
			bits++ // KMH needs a multiple of its 2-bit subspaces
		}
	}
	learner, err := learnerOf(cfg.algorithm)
	if err != nil {
		return nil, err
	}
	ix, err := index.BuildP(learner, vectors, n, dim, bits, cfg.tables, cfg.seed, cfg.procs)
	if err != nil {
		return nil, err
	}
	if cfg.rerank {
		m := cfg.rerankM
		if m == 0 {
			m = 8
		}
		if m > dim {
			m = dim
		}
		kq := cfg.rerankK
		if kq == 0 {
			kq = quantization.MaxCentroids
		}
		if kq > n {
			kq = n
		}
		factor := cfg.rerankFactor
		if factor == 0 {
			factor = 8
		}
		// A distinct seed stream from the hash learners, derived from the
		// build seed so the whole index stays reproducible.
		q, err := quantization.TrainReranker(vectors, n, dim, m, kq, cfg.opq, cfg.seed+7331, cfg.procs)
		if err != nil {
			return nil, err
		}
		if err := ix.AttachQuantizer(q, q.EncodeAll(vectors, n, cfg.procs)); err != nil {
			return nil, err
		}
		ix.RerankFactor = factor
	}
	out := &Index{live: ix, metric: cfg.metric, methodName: string(cfg.method), rec: recorderOf(cfg), sealEvery: cfg.memtable}
	out.muScale = earlyStopScale(ix)
	if err := out.publishLocked(); err != nil {
		return nil, err
	}
	out.buildTime = time.Since(buildStart)
	return out, nil
}

// normalizeRow scales v to unit L2 norm in place (zero vectors are left
// untouched).
func normalizeRow(v []float32) {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	if s == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(s))
	for i := range v {
		v[i] *= inv
	}
}

// learnerOf maps the public Algorithm to a configured learner.
func learnerOf(a Algorithm) (hash.Learner, error) {
	switch a {
	case KMH:
		return hash.KMH{SubspaceBits: 2}, nil
	default:
		return hash.ByName(string(a))
	}
}

// earlyStopScale computes µ = 1/(σ_max(H)·√m), minimized over tables
// (the weakest bound is safe for all of them), when every hasher
// exposes its projection matrix; otherwise 0 (early stop unavailable).
func earlyStopScale(ix *index.Index) float64 {
	mu := math.Inf(1)
	for _, t := range ix.Tables {
		p, ok := t.Hasher.(interface{ Matrix() *vecmath.Mat })
		if !ok {
			return 0
		}
		h := p.Matrix()
		var sn float64
		if h.Rows >= h.Cols {
			sn = vecmath.SpectralNorm(h)
		} else {
			sn = vecmath.SpectralNorm(h.T())
		}
		if sn <= 0 {
			return 0
		}
		v := 1 / (sn * math.Sqrt(float64(h.Rows)))
		if v < mu {
			mu = v
		}
	}
	if math.IsInf(mu, 1) {
		return 0
	}
	return mu
}

// Search returns the k approximate nearest neighbors of q in ascending
// distance order. With no options the entire index is probed (exact but
// slow); pass WithMaxCandidates to trade recall for latency.
func (ix *Index) Search(q []float32, k int, opts ...SearchOption) ([]Neighbor, error) {
	nbrs, _, err := ix.SearchWithStats(q, k, opts...)
	return nbrs, err
}

// SearchWithStats is Search plus the work stats of §2.2: how many
// buckets the probe sequence generated and probed, how many candidate
// items were evaluated, and whether the early-stop rule fired. Pass
// WithProfile to also split the time between retrieval and evaluation.
func (ix *Index) SearchWithStats(q []float32, k int, opts ...SearchOption) ([]Neighbor, SearchStats, error) {
	var sc searchConfig
	for _, o := range opts {
		o(&sc)
	}
	var tr *trace.Trace
	if ix.rec != nil {
		tr = ix.rec.Begin(ix.methodName)
	}
	nbrs, st, err := ix.searchTraced(q, k, sc, tr)
	if tr != nil {
		if err != nil {
			ix.rec.Recycle(tr)
		} else {
			tr.SetTotals(totalsOf(k, sc, st))
			ix.rec.Finish(tr, time.Since(tr.Begin))
		}
	}
	return nbrs, st, err
}

// totalsOf copies a search's final counters into trace totals so a
// captured trace is self-contained.
func totalsOf(k int, sc searchConfig, st SearchStats) trace.Totals {
	return trace.Totals{
		K:                k,
		Budget:           sc.maxCandidates,
		BucketsGenerated: st.BucketsGenerated,
		BucketsProbed:    st.BucketsProbed,
		Candidates:       st.Candidates,
		EarlyAbandoned:   st.EarlyAbandoned,
		Filtered:         st.Filtered,
		ADCScored:        st.ADCScored,
		Reranked:         st.Reranked,
		EarlyStopped:     st.EarlyStopped,
	}
}

// searchTraced runs one search, recording pipeline-stage spans into tr
// when non-nil (every trace.Trace method is nil-safe, so the untraced
// path pays only the nil checks).
func (ix *Index) searchTraced(q []float32, k int, sc searchConfig, tr *trace.Trace) ([]Neighbor, SearchStats, error) {
	snap, err := ix.currentSnapshot()
	if err != nil {
		return nil, SearchStats{}, err
	}
	tr.Mark(trace.StageSnapshot, -1)
	s := snap.searcher()
	defer snap.release(s)
	if ix.metric == Angular && len(q) == snap.view.Dim {
		qb := s.Qbuf()
		copy(qb, q)
		normalizeRow(qb)
		q = qb
	}
	tr.Mark(trace.StagePreprocess, -1)
	res, err := s.Search(q, query.Options{
		K:             k,
		MaxCandidates: sc.maxCandidates,
		MaxBuckets:    sc.maxBuckets,
		EarlyStop:     sc.earlyStop,
		Radius:        sc.radius,
		Mu:            snap.mu,
		Profile:       sc.profile,
		Trace:         tr,
		TagMask:       sc.tagMask,
		Filter:        filterOf(sc.filter),
	})
	if err != nil {
		return nil, SearchStats{}, err
	}
	out := make([]Neighbor, len(res.IDs))
	for i := range res.IDs {
		out[i] = Neighbor{ID: int(res.IDs[i]), Distance: res.Dists[i]}
	}
	return out, statsOf(res.Stats), nil
}

// filterOf adapts the public filter signature (plain int ids) to the
// internal one. nil stays nil, so unfiltered searches keep the
// allocation-free gather fast path.
func filterOf(f func(id int, meta uint64) bool) func(int32, uint64) bool {
	if f == nil {
		return nil
	}
	return func(id int32, meta uint64) bool { return f(int(id), meta) }
}

// Add appends one vector to the index and returns its id (the next row
// index). The learned hash functions are not retrained — as with every
// L2H system they are assumed trained on a representative sample — so
// heavy drift calls for a rebuild. Safe for concurrent use with Search;
// visibility is snapshot-based: searches already running (including
// batch workers) keep probing the snapshot they started on, and the
// first search issued after Add returns publishes a fresh snapshot
// that includes the vector. Adds are serialized with each other.
func (ix *Index) Add(vec []float32) (int, error) {
	return ix.AddWithMeta(vec, 0)
}

// AddWithMeta is Add with a per-item metadata word, the input of
// WithFilter and WithTagMask. A zero word is free; the first nonzero
// word allocates the index's metadata slab (zeros for earlier items).
func (ix *Index) AddWithMeta(vec []float32, meta uint64) (int, error) {
	if ix.metric == Angular {
		if len(vec) != ix.live.Dim { // Dim is immutable after Build
			return 0, fmt.Errorf("gqr: vector dim %d != index dim %d", len(vec), ix.live.Dim)
		}
		n := make([]float32, len(vec))
		copy(n, vec)
		normalizeRow(n)
		vec = n
	}
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	if ix.closed {
		return 0, fmt.Errorf("gqr: index is closed")
	}
	id, err := ix.addLocked(vec, meta)
	if err != nil {
		return 0, err
	}
	ix.maybeSealLocked()
	return id, nil
}

// addLocked appends one already-normalized vector: WAL first (the
// durability point), then the live index. Caller holds writeMu and
// seals afterwards via maybeSealLocked.
func (ix *Index) addLocked(vec []float32, meta uint64) (int, error) {
	if len(vec) != ix.live.Dim {
		return 0, fmt.Errorf("gqr: vector dim %d != index dim %d", len(vec), ix.live.Dim)
	}
	// Durability point: the record is on stable storage before the Add
	// is acknowledged. The vector is logged post-normalization so replay
	// reconstructs the stored bytes exactly (bit-identical recovery).
	if ix.dur != nil && ix.dur.walOn {
		if err := ix.dur.append(uint64(ix.live.N), meta, vec); err != nil {
			return 0, fmt.Errorf("gqr: wal append: %w", err)
		}
	}
	id, err := ix.live.AddMeta(vec, meta)
	if err != nil {
		return 0, err
	}
	ix.stale.Store(true)
	ix.adds.Add(1)
	return int(id), nil
}

// maybeSealLocked seals the memtable once it reaches the configured
// size and kicks the background merger. Caller holds writeMu.
func (ix *Index) maybeSealLocked() {
	if ix.live.MemtableItems() >= ix.sealEvery {
		ix.sealLocked(false)
		ix.maybeMergeLocked()
	}
}

// Delete tombstones one item by id. The id stays permanently allocated
// (ids are row indexes and are never reused) but the item stops
// appearing in search results from the next snapshot on; its storage is
// reclaimed from the posting lists when a seal or merge purges the
// range. With the WAL on, the delete record is fsynced before the call
// returns — the same durability contract as Add. Deleting an unknown or
// already-deleted id returns ErrNotFound.
func (ix *Index) Delete(id int) error {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	if ix.closed {
		return fmt.Errorf("gqr: index is closed")
	}
	return ix.deleteLocked(id)
}

func (ix *Index) deleteLocked(id int) error {
	if id < 0 || id >= ix.live.N || ix.live.IsDeleted(int32(id)) {
		return fmt.Errorf("gqr: delete id %d: %w", id, ErrNotFound)
	}
	if ix.dur != nil && ix.dur.walOn {
		if err := ix.dur.appendDelete(uint64(id)); err != nil {
			return fmt.Errorf("gqr: wal append: %w", err)
		}
	}
	ix.live.Delete(int32(id))
	ix.deletes.Add(1)
	ix.stale.Store(true)
	return nil
}

// Update replaces one item's vector: a delete of id plus an add of vec,
// applied atomically with respect to snapshots (no published snapshot
// ever shows both or neither). The item keeps its metadata word but
// gets a NEW id — the returned one — because ids are row indexes into
// contiguous storage. Updating an unknown or deleted id returns
// ErrNotFound; a wrong-dimension vector returns ErrDimension before
// anything is applied. On the WAL, the add record is written before the
// delete record, so a crash between the two replays as a duplicate
// (old and new both live, the update unacknowledged), never as a loss.
func (ix *Index) Update(id int, vec []float32) (int, error) {
	if ix.metric == Angular && len(vec) == ix.live.Dim {
		n := make([]float32, len(vec))
		copy(n, vec)
		normalizeRow(n)
		vec = n
	}
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	if ix.closed {
		return 0, fmt.Errorf("gqr: index is closed")
	}
	if len(vec) != ix.live.Dim {
		return 0, fmt.Errorf("gqr: update id %d: vector dim %d != index dim %d: %w", id, len(vec), ix.live.Dim, ErrDimension)
	}
	if id < 0 || id >= ix.live.N || ix.live.IsDeleted(int32(id)) {
		return 0, fmt.Errorf("gqr: update id %d: %w", id, ErrNotFound)
	}
	meta := ix.live.MetaOf(int32(id))
	newID, err := ix.addLocked(vec, meta)
	if err != nil {
		return 0, err
	}
	if err := ix.deleteLocked(id); err != nil {
		return 0, err
	}
	ix.maybeSealLocked()
	return newID, nil
}

// SetMetadata attaches one metadata word per current item (the
// WithFilter / WithTagMask input for corpora whose tags are known at
// build time; per-item words for later adds go through AddWithMeta).
// len(meta) must equal the current item count. The slice is copied.
// Metadata set before EnableDurability is persisted with the base;
// words set afterwards for pre-existing items are not re-persisted.
func (ix *Index) SetMetadata(meta []uint64) error {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	if ix.closed {
		return fmt.Errorf("gqr: index is closed")
	}
	cp := make([]uint64, len(meta))
	copy(cp, meta)
	if err := ix.live.SetMeta(cp); err != nil {
		return fmt.Errorf("gqr: %w", err)
	}
	ix.stale.Store(true)
	return nil
}

// CompactionInfo describes one applied segment merge, delivered to the
// observer installed by SetCompactionObserver.
type CompactionInfo struct {
	// Duration is the background merge's wall time (fold + optional
	// segment-file write).
	Duration time.Duration
	// SegmentsIn is how many segments were folded into one.
	SegmentsIn int
	// Items is the merged segment's item count.
	Items int
	// Purged is how many tombstoned items the merge dropped from the
	// posting lists (the inputs' live counts minus the output's).
	Purged int
}

// SetCompactionObserver installs a hook invoked after every applied
// background or inline merge. Pass nil to remove it. The hook runs
// outside the writer lock and must be safe for concurrent use.
func (ix *Index) SetCompactionObserver(f func(CompactionInfo)) {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	ix.compactObs = f
}

// sealLocked freezes the memtable into a new segment. With durability
// enabled the segment is written to its own file — synchronously when
// sync is set (checkpoints: EnableDurability, Recover, Close, Compact),
// otherwise on a background goroutine — and the WAL is rotated; the old
// log is deleted only after the segment file is durable. Caller holds
// writeMu.
func (ix *Index) sealLocked(sync bool) error {
	seg := ix.live.SealMemtable()
	if seg == nil {
		return nil
	}
	if ix.dur == nil {
		return nil
	}
	d := ix.live.Dim
	// The segment file covers the memtable's full id range (its span),
	// including slots purged at seal; the posting lists inside list only
	// live items.
	vecs := ix.live.Data[seg.MinID()*d : (seg.MinID()+seg.Span())*d]
	var meta []uint64
	if slab := ix.live.MetaSlab(); slab != nil {
		meta = slab[seg.MinID() : seg.MinID()+seg.Span()]
	}
	qcodes := ix.live.CodesRange(seg.MinID(), seg.Span())
	// Capture the tombstone bitmap under the lock: the WAL being retired
	// may hold delete records, whose only other durable home is the
	// tombs.bits sidecar written before the log is dropped.
	tombs := ix.live.FoldedTombWords()
	dead := ix.live.Tombstones()
	bits := ix.live.N
	oldWAL, err := ix.dur.rotate(ix.live.N)
	if err != nil {
		ix.persistErr = firstErr(ix.persistErr, err)
		return err
	}
	if sync {
		err := ix.persistSegment(seg, vecs, meta, qcodes, tombs, dead, bits, oldWAL)
		ix.persistErr = firstErr(ix.persistErr, err)
		return err
	}
	ix.bgN++
	ix.bg.Add(1)
	go func() {
		defer ix.bg.Done()
		err := ix.persistSegment(seg, vecs, meta, qcodes, tombs, dead, bits, oldWAL)
		ix.writeMu.Lock()
		defer ix.writeMu.Unlock()
		ix.bgN--
		ix.persistErr = firstErr(ix.persistErr, err)
		if err == nil && !ix.closed {
			ix.maybeMergeLocked()
		}
	}()
	return nil
}

// persistSegment writes one sealed segment's file atomically, persists
// the tombstone bitmap the retiring WAL's delete records folded into,
// installs the segment's zero-reference cleanup hook, and only then
// retires the WAL. Pure filesystem work plus reads of immutable state —
// safe off-lock.
func (ix *Index) persistSegment(seg *index.Segment, vecs []float32, meta []uint64, qcodes []uint8, tombs []uint64, dead, bits int, oldWAL string) error {
	path, err := ix.dur.writeSegment(seg, vecs, meta, qcodes, ix.live.Dim)
	if err != nil {
		// Keep the old WAL: it is still the only durable copy of these
		// Adds, and recovery will replay it.
		return err
	}
	if err := ix.dur.writeTombs(tombs, dead, bits); err != nil {
		return err
	}
	seg.SetOnZero(func() { os.Remove(path) })
	if oldWAL != "" {
		ix.dur.dropWAL(oldWAL)
	}
	return nil
}

// maybeMergeLocked schedules one background merge when the size-tiered
// policy finds a run worth folding and no merge is already in flight.
// Caller holds writeMu.
func (ix *Index) maybeMergeLocked() {
	if ix.merging || ix.closed {
		return
	}
	in := ix.live.PlanMerge(ix.mergeBarrier)
	if in == nil {
		return
	}
	seq := ix.live.TakeSeq()
	var vecs []float32
	var meta []uint64
	var qcodes []uint8
	if ix.dur != nil {
		d := ix.live.Dim
		lo := in[0].MinID()
		span := 0
		for _, s := range in {
			span += s.Span()
		}
		// Subslice of the immutable prefix: later Adds only ever write
		// past ix.live.N*d, never into [lo*d, (lo+span)*d).
		vecs = ix.live.Data[lo*d : (lo+span)*d]
		if slab := ix.live.MetaSlab(); slab != nil {
			meta = slab[lo : lo+span]
		}
		qcodes = ix.live.CodesRange(lo, span)
	}
	// A merge is where tombstoned items are purged for good: hand the
	// merger a frozen bitmap (copy-on-write, safe off-lock) when any of
	// the inputs still carry dead ids in their posting lists.
	var tombs []uint64
	if ix.live.PendingTombstones() > 0 {
		tombs = ix.live.FoldedTombWords()
	}
	ix.merging = true
	ix.bgN++
	ix.bg.Add(1)
	go ix.runMerge(in, seq, vecs, meta, qcodes, tombs)
}

// runMerge is the background merger: it folds the planned run into one
// segment (the O(core) work that must never happen on the publish
// path), makes the merged file durable first when durability is on,
// then splices the result into the live segment list.
func (ix *Index) runMerge(in []*index.Segment, seq uint64, vecs []float32, meta []uint64, qcodes []uint8, tombs []uint64) {
	defer ix.bg.Done()
	start := time.Now()
	liveIn := 0
	for _, s := range in {
		liveIn += s.Items()
	}
	merged, err := index.MergeSegments(in, seq, tombs)
	var path string
	if err == nil && ix.dur != nil {
		// The merged file must exist before the inputs can ever be
		// deleted, so every crash window is fully covered.
		path, err = ix.dur.writeSegment(merged, vecs, meta, qcodes, ix.live.Dim)
	}
	elapsed := time.Since(start)

	ix.writeMu.Lock()
	ix.merging = false
	ix.bgN--
	var obs func(CompactionInfo)
	var info CompactionInfo
	if err == nil {
		err = ix.live.ApplyMerge(in, merged)
		if err == nil {
			if path != "" {
				merged.SetOnZero(func() { os.Remove(path) })
			}
			ix.stale.Store(true)
			obs = ix.compactObs
			info = CompactionInfo{Duration: elapsed, SegmentsIn: len(in), Items: merged.Items(), Purged: liveIn - merged.Items()}
		} else if path != "" {
			os.Remove(path)
		}
	}
	ix.persistErr = firstErr(ix.persistErr, err)
	if !ix.closed {
		ix.maybeMergeLocked()
	}
	rec := ix.rec
	ix.writeMu.Unlock()

	if obs != nil {
		obs(info)
	}
	if rec != nil && err == nil {
		// A compaction is its own flight record: one StageCompact span
		// covering the whole merge, annotated with the items folded.
		if tr := rec.Begin("compaction"); tr != nil {
			tr.Record(trace.StageCompact, -1, start, start.Add(elapsed),
				trace.Work{Candidates: int32(info.Items)})
			tr.SetTotals(trace.Totals{Candidates: info.Items})
			rec.Finish(tr, elapsed)
		}
	}
}

func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// Compact waits for in-flight background work, then folds every
// mergeable segment into one inline and seals the memtable first, so
// the index reaches its most compact shape. It also surfaces any
// background persistence error. Blocks Adds for the duration; search
// snapshots are unaffected.
func (ix *Index) Compact() error {
	for {
		ix.bg.Wait()
		ix.writeMu.Lock()
		if ix.closed {
			ix.writeMu.Unlock()
			return fmt.Errorf("gqr: index is closed")
		}
		if !ix.merging && ix.bgN == 0 {
			break
		}
		ix.writeMu.Unlock()
	}
	var obs func(CompactionInfo)
	var info CompactionInfo
	defer func() {
		ix.writeMu.Unlock()
		if obs != nil {
			obs(info)
		}
	}()
	if err := ix.sealLocked(true); err != nil {
		return err
	}
	in := ix.live.SegmentsAbove(ix.mergeBarrier)
	// Fold when there is more than one segment, or when a lone segment
	// still carries tombstoned ids in its posting lists: compaction is
	// the canonical form, and dead items must not survive it.
	if len(in) >= 2 || (len(in) == 1 && ix.live.PendingTombstones() > 0) {
		var tombs []uint64
		if ix.live.PendingTombstones() > 0 {
			tombs = ix.live.FoldedTombWords()
		}
		liveIn := 0
		for _, s := range in {
			liveIn += s.Items()
		}
		merged, err := index.MergeSegments(in, ix.live.TakeSeq(), tombs)
		if err != nil {
			return err
		}
		if ix.dur != nil {
			d := ix.live.Dim
			lo := in[0].MinID()
			span := 0
			for _, s := range in {
				span += s.Span()
			}
			var meta []uint64
			if slab := ix.live.MetaSlab(); slab != nil {
				meta = slab[lo : lo+span]
			}
			path, err := ix.dur.writeSegment(merged, ix.live.Data[lo*d:(lo+span)*d], meta, ix.live.CodesRange(lo, span), d)
			if err != nil {
				return err
			}
			merged.SetOnZero(func() { os.Remove(path) })
		}
		if err := ix.live.ApplyMerge(in, merged); err != nil {
			return err
		}
		ix.stale.Store(true)
		obs = ix.compactObs
		info = CompactionInfo{SegmentsIn: len(in), Items: merged.Items(), Purged: liveIn - merged.Items()}
	}
	if err := ix.writeTombsLocked(); err != nil {
		return err
	}
	return ix.persistErr
}

// writeTombsLocked persists the current tombstone bitmap sidecar when
// durability is on and any item has ever been deleted. Caller holds
// writeMu.
func (ix *Index) writeTombsLocked() error {
	if ix.dur == nil || ix.live.Tombstones() == 0 {
		return nil
	}
	return ix.dur.writeTombs(ix.live.FoldedTombWords(), ix.live.Tombstones(), ix.live.N)
}

// Close stops background compaction, seals and persists the memtable
// when durability is enabled (the clean-shutdown WAL handoff: after a
// clean Close the data directory recovers without any WAL replay), and
// closes the WAL. The index must not be used afterwards; Close is
// idempotent. It returns the first error any background persistence
// hit, so acknowledged-but-unpersisted state is never silently
// dropped.
func (ix *Index) Close() error {
	ix.writeMu.Lock()
	if ix.closed {
		ix.writeMu.Unlock()
		return nil
	}
	ix.closed = true
	ix.writeMu.Unlock()
	// In-flight seals and merges drain here; closed stops them from
	// scheduling successors.
	ix.bg.Wait()

	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	err := ix.persistErr
	if ix.dur != nil {
		// Seal synchronously so every acknowledged Add lands in a
		// durable segment file; the WALs that covered them are retired
		// by the persist, leaving only the empty current log. The
		// tombstone bitmap is persisted too, so a clean shutdown's
		// deletes recover without WAL replay.
		err = firstErr(err, ix.sealLocked(true))
		err = firstErr(err, ix.writeTombsLocked())
		err = firstErr(err, ix.dur.close())
	}
	return err
}

// publishLocked snapshots the live index, rebinds the querying method
// to the immutable view, and swaps the result in as the current read
// snapshot. Publication retains the frozen segment list by reference
// (O(segments)) and clones only the memtable of recent Adds — never
// O(core) work; folding segments together is the background merger's
// job. Caller holds writeMu (or, during Build/Load, has exclusive
// access to the index).
func (ix *Index) publishLocked() error {
	view := ix.live.Snapshot()
	method, err := query.NewMethod(ix.methodName, view)
	if err != nil {
		view.Release()
		return err
	}
	s := &snapshot{view: view, method: method, mu: ix.muScale, gen: ix.gen.Add(1)}
	s.pool.New = func() any { return query.NewSearcher(view, method) }
	old := ix.snap.Swap(s)
	ix.stale.Store(false)
	if old != nil {
		// Drop the unpublished view's segment references. In-flight
		// searches still holding it are unaffected: a zero refcount only
		// deletes the segment's file, never its memory.
		old.view.Release()
	}
	return nil
}

// currentSnapshot returns the read snapshot to search, republishing
// first when Adds made the published one stale. Republishing is the
// only search-path operation that takes the writer lock; steady-state
// searches load the pointer and go.
func (ix *Index) currentSnapshot() (*snapshot, error) {
	if ix.stale.Load() {
		ix.writeMu.Lock()
		if ix.stale.Load() { // re-check: another search may have republished
			if err := ix.publishLocked(); err != nil {
				ix.writeMu.Unlock()
				return nil, err
			}
			ix.methodRebuilds.Add(1)
		}
		ix.writeMu.Unlock()
	}
	return ix.snap.Load(), nil
}

// Stats describes the built index.
type Stats struct {
	Items      int
	Dim        int
	CodeLength int
	Tables     int
	// Buckets is the number of non-empty buckets per table.
	Buckets []int
	// Algorithm, Method and Metric echo the build configuration.
	Algorithm Algorithm
	Method    QueryMethod
	Metric    Metric
	// BuildTime is how long Build (training plus table construction)
	// took; zero for indexes restored via Load.
	BuildTime time.Duration
	// BuildParallelism is the resolved worker bound Build ran with
	// (WithBuildParallelism, defaulting to GOMAXPROCS); zero for
	// indexes restored via Load. TrainTime, CodeTime and FreezeTime
	// split BuildTime between hasher training, item coding, and CSR
	// core construction.
	BuildParallelism int
	TrainTime        time.Duration
	CodeTime         time.Duration
	FreezeTime       time.Duration
	// Adds counts vectors appended through Add since construction.
	Adds int64
	// Deletes counts tombstones recorded through Delete and Update
	// since construction (Items above counts allocated ids, live or
	// dead).
	Deletes int64
	// LiveItems is Items minus Tombstones: the number of vectors a
	// search can return. Tombstones is how many ids have been deleted;
	// PendingTombstones is the subset still occupying posting-list
	// slots because no seal or merge has purged their range yet.
	LiveItems         int
	Tombstones        int
	PendingTombstones int
	// MethodRebuilds counts how often a fresh read snapshot (with
	// rebuilt querying-method views) was published because Add changed
	// the buckets.
	MethodRebuilds int64
	// Compactions counts all compaction events since construction:
	// memtable seals plus segment merges (Seals + Merges).
	Compactions int64
	// Seals counts memtable → frozen-segment transitions; Merges counts
	// applied segment merges (background or inline Compact).
	Seals  int64
	Merges int64
	// Segments is the frozen segment count; MemtableItems is the number
	// of Adds not yet sealed into a segment.
	Segments      int
	MemtableItems int
	// WALBytes is the total size of the live write-ahead logs; zero
	// when durability is off or the WAL is disabled.
	WALBytes int64
	// SnapshotGeneration is the generation counter of the published
	// read snapshot; it starts at 1 (Build) and increments on every
	// republish.
	SnapshotGeneration uint64
	// RerankM and RerankK describe the serving quantizer (subspaces and
	// centroids per subspace) and RerankFactor the re-ranking stage's
	// survivor budget (the factor·k quantized-best candidates that get
	// exact distances); all zero when WithReranking was not used.
	// OPQRotation reports whether codes sit behind a learned rotation.
	RerankM      int
	RerankK      int
	RerankFactor int
	OPQRotation  bool
}

// Stats reports size, occupancy and lifecycle information. It reads
// the live (writer-side) index, so Items reflects Adds immediately,
// before the next search republishes the read snapshot.
func (ix *Index) Stats() Stats {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	s := Stats{
		Items:              ix.live.N,
		Dim:                ix.live.Dim,
		CodeLength:         ix.live.Bits(),
		Tables:             len(ix.live.Tables),
		Algorithm:          Algorithm(ix.live.Tables[0].Hasher.Name()),
		Method:             QueryMethod(ix.methodName),
		Metric:             ix.metric,
		BuildTime:          ix.buildTime,
		BuildParallelism:   ix.live.Timings.Procs,
		TrainTime:          ix.live.Timings.Train,
		CodeTime:           ix.live.Timings.Code,
		FreezeTime:         ix.live.Timings.Freeze,
		Adds:               ix.adds.Load(),
		Deletes:            ix.deletes.Load(),
		LiveItems:          ix.live.LiveItems(),
		Tombstones:         ix.live.Tombstones(),
		PendingTombstones:  ix.live.PendingTombstones(),
		MethodRebuilds:     ix.methodRebuilds.Load(),
		Compactions:        int64(ix.live.Compactions()),
		Seals:              int64(ix.live.Seals()),
		Merges:             int64(ix.live.Merges()),
		Segments:           ix.live.SegmentCount(),
		MemtableItems:      ix.live.MemtableItems(),
		SnapshotGeneration: ix.gen.Load(),
	}
	if ix.dur != nil {
		s.WALBytes = ix.dur.walBytes()
	}
	if q := ix.live.Quantizer(); q != nil {
		s.RerankM, s.RerankK, s.RerankFactor = q.M(), q.K(), ix.live.RerankFactor
		s.OPQRotation = q.Rotated()
	}
	for t := range ix.live.Tables {
		s.Buckets = append(s.Buckets, ix.live.BucketCount(t))
	}
	return s
}
