package gqr

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gqr/internal/hash"
	"gqr/internal/index"
	"gqr/internal/query"
	"gqr/internal/vecmath"
)

// Neighbor is one search result: an item id (the row index of the
// vector in the build block) and its exact Euclidean distance to the
// query.
type Neighbor struct {
	ID       int
	Distance float64
}

// SearchStats reports the work one search performed, in the paper's
// §2.2 units: buckets generated (probe-sequence emissions, including
// codes that hashed to empty buckets), buckets probed (non-empty
// buckets evaluated), and candidates (distinct items whose exact
// distance was computed — the paper's "# retrieved items", Figure 8).
// RetrievalTime and EvaluationTime split the query between deciding
// which buckets to probe and computing exact distances; they are only
// populated when WithProfile is set. For a ShardedIndex the counters
// are sums over shards and EarlyStopped reports whether any shard's
// QD lower-bound rule fired.
type SearchStats struct {
	BucketsGenerated int           `json:"bucketsGenerated"`
	BucketsProbed    int           `json:"bucketsProbed"`
	Candidates       int           `json:"candidates"`
	EarlyStopped     bool          `json:"earlyStopped"`
	RetrievalTime    time.Duration `json:"retrievalTime"`
	EvaluationTime   time.Duration `json:"evaluationTime"`
}

// merge accumulates another search's work into s (used by the sharded
// index and by cumulative per-batch accounting).
func (s *SearchStats) merge(o SearchStats) {
	s.BucketsGenerated += o.BucketsGenerated
	s.BucketsProbed += o.BucketsProbed
	s.Candidates += o.Candidates
	s.EarlyStopped = s.EarlyStopped || o.EarlyStopped
	s.RetrievalTime += o.RetrievalTime
	s.EvaluationTime += o.EvaluationTime
}

// statsOf converts the internal per-query stats to the public type.
func statsOf(st query.Stats) SearchStats {
	return SearchStats{
		BucketsGenerated: st.BucketsGenerated,
		BucketsProbed:    st.BucketsProbed,
		Candidates:       st.Candidates,
		EarlyStopped:     st.EarlyStopped,
		RetrievalTime:    st.RetrievalTime,
		EvaluationTime:   st.EvaluationTime,
	}
}

// Index is a learned-hash ANN index over a fixed set of vectors. An
// Index is safe for concurrent Search calls.
type Index struct {
	ix     *index.Index
	method query.Method
	mu     float64 // Theorem 2 scale for early stop (0 when unavailable)
	metric Metric

	searchMu sync.Mutex
	searcher *query.Searcher
	qbuf     []float32 // normalized-query scratch (angular metric)
	// methodStale marks that Add changed the bucket structure since the
	// querying method precomputed its per-table views (HR/QR bucket
	// lists, MIH substring tables); the next search rebuilds them.
	methodStale bool

	// Lifecycle instrumentation surfaced through Stats: how long Build
	// took, how many vectors Add appended, and how often the querying
	// method's precomputed views were rebuilt because of those Adds.
	buildTime      time.Duration
	adds           atomic.Int64
	methodRebuilds atomic.Int64
}

// Build trains hash functions on the n×dim row-major block vectors
// (n = len(vectors)/dim) and indexes every row. The block is retained
// by reference for evaluation; do not mutate it afterwards.
func Build(vectors []float32, dim int, opts ...Option) (*Index, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if dim <= 0 || len(vectors) == 0 || len(vectors)%dim != 0 {
		return nil, fmt.Errorf("gqr: vector block length %d not a positive multiple of dim %d", len(vectors), dim)
	}
	buildStart := time.Now()
	n := len(vectors) / dim
	if cfg.metric == Angular {
		normalized := make([]float32, len(vectors))
		copy(normalized, vectors)
		for i := 0; i < n; i++ {
			normalizeRow(normalized[i*dim : (i+1)*dim])
		}
		vectors = normalized
	}
	bits := cfg.bits
	if bits == 0 {
		bits = index.CodeLengthFor(n, cfg.expected)
		if cfg.algorithm == KMH && bits%2 != 0 {
			bits++ // KMH needs a multiple of its 2-bit subspaces
		}
	}
	learner, err := learnerOf(cfg.algorithm)
	if err != nil {
		return nil, err
	}
	ix, err := index.Build(learner, vectors, n, dim, bits, cfg.tables, cfg.seed)
	if err != nil {
		return nil, err
	}
	method, err := query.NewMethod(string(cfg.method), ix)
	if err != nil {
		return nil, err
	}
	out := &Index{ix: ix, method: method, metric: cfg.metric, qbuf: make([]float32, dim)}
	out.mu = earlyStopScale(ix)
	out.searcher = query.NewSearcher(ix, method)
	out.buildTime = time.Since(buildStart)
	return out, nil
}

// normalizeRow scales v to unit L2 norm in place (zero vectors are left
// untouched).
func normalizeRow(v []float32) {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	if s == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(s))
	for i := range v {
		v[i] *= inv
	}
}

// learnerOf maps the public Algorithm to a configured learner.
func learnerOf(a Algorithm) (hash.Learner, error) {
	switch a {
	case KMH:
		return hash.KMH{SubspaceBits: 2}, nil
	default:
		return hash.ByName(string(a))
	}
}

// earlyStopScale computes µ = 1/(σ_max(H)·√m), minimized over tables
// (the weakest bound is safe for all of them), when every hasher
// exposes its projection matrix; otherwise 0 (early stop unavailable).
func earlyStopScale(ix *index.Index) float64 {
	mu := math.Inf(1)
	for _, t := range ix.Tables {
		p, ok := t.Hasher.(interface{ Matrix() *vecmath.Mat })
		if !ok {
			return 0
		}
		h := p.Matrix()
		var sn float64
		if h.Rows >= h.Cols {
			sn = vecmath.SpectralNorm(h)
		} else {
			sn = vecmath.SpectralNorm(h.T())
		}
		if sn <= 0 {
			return 0
		}
		v := 1 / (sn * math.Sqrt(float64(h.Rows)))
		if v < mu {
			mu = v
		}
	}
	if math.IsInf(mu, 1) {
		return 0
	}
	return mu
}

// Search returns the k approximate nearest neighbors of q in ascending
// distance order. With no options the entire index is probed (exact but
// slow); pass WithMaxCandidates to trade recall for latency.
func (ix *Index) Search(q []float32, k int, opts ...SearchOption) ([]Neighbor, error) {
	nbrs, _, err := ix.SearchWithStats(q, k, opts...)
	return nbrs, err
}

// SearchWithStats is Search plus the work stats of §2.2: how many
// buckets the probe sequence generated and probed, how many candidate
// items were evaluated, and whether the early-stop rule fired. Pass
// WithProfile to also split the time between retrieval and evaluation.
func (ix *Index) SearchWithStats(q []float32, k int, opts ...SearchOption) ([]Neighbor, SearchStats, error) {
	var sc searchConfig
	for _, o := range opts {
		o(&sc)
	}
	ix.searchMu.Lock()
	defer ix.searchMu.Unlock()
	if err := ix.refreshMethodLocked(); err != nil {
		return nil, SearchStats{}, err
	}
	if ix.metric == Angular && len(q) == len(ix.qbuf) {
		copy(ix.qbuf, q)
		normalizeRow(ix.qbuf)
		q = ix.qbuf
	}
	res, err := ix.searcher.Search(q, query.Options{
		K:             k,
		MaxCandidates: sc.maxCandidates,
		MaxBuckets:    sc.maxBuckets,
		EarlyStop:     sc.earlyStop,
		Radius:        sc.radius,
		Mu:            ix.mu,
		Profile:       sc.profile,
	})
	if err != nil {
		return nil, SearchStats{}, err
	}
	out := make([]Neighbor, len(res.IDs))
	for i := range res.IDs {
		out[i] = Neighbor{ID: int(res.IDs[i]), Distance: res.Dists[i]}
	}
	return out, statsOf(res.Stats), nil
}

// Add appends one vector to the index and returns its id (the next row
// index). The learned hash functions are not retrained — as with every
// L2H system they are assumed trained on a representative sample — so
// heavy drift calls for a rebuild. Safe for concurrent use with Search.
func (ix *Index) Add(vec []float32) (int, error) {
	ix.searchMu.Lock()
	defer ix.searchMu.Unlock()
	if ix.metric == Angular {
		if len(vec) != ix.ix.Dim {
			return 0, fmt.Errorf("gqr: vector dim %d != index dim %d", len(vec), ix.ix.Dim)
		}
		n := make([]float32, len(vec))
		copy(n, vec)
		normalizeRow(n)
		vec = n
	}
	id, err := ix.ix.Add(vec)
	if err != nil {
		return 0, err
	}
	ix.methodStale = true
	ix.adds.Add(1)
	return int(id), nil
}

// refreshMethodLocked rebuilds the querying method's precomputed
// per-table views after Add calls. Caller holds searchMu.
func (ix *Index) refreshMethodLocked() error {
	if !ix.methodStale {
		return nil
	}
	method, err := query.NewMethod(ix.method.Name(), ix.ix)
	if err != nil {
		return err
	}
	ix.method = method
	ix.searcher = query.NewSearcher(ix.ix, method)
	ix.methodStale = false
	ix.methodRebuilds.Add(1)
	return nil
}

// BatchQueryResult is one query's outcome inside a batch: its
// neighbors and work stats, or the error that failed this query alone.
// Structural problems that invalidate the whole batch (a block length
// that is not a multiple of dim, a non-positive k) are reported by the
// batch call itself, not per query.
type BatchQueryResult struct {
	Neighbors []Neighbor
	Stats     SearchStats
	Err       error
}

// SearchBatch answers many queries concurrently: queries is an
// nq×dim row-major block, and the result slice has one neighbor list
// per query. Parallelism is capped at GOMAXPROCS; each worker gets its
// own searcher, so batch throughput scales with cores while Search's
// single-query latency semantics stay untouched. The first per-query
// error, if any, fails the call; use SearchBatchWithStats to get
// per-query errors and work stats instead.
func (ix *Index) SearchBatch(queries []float32, k int, opts ...SearchOption) ([][]Neighbor, error) {
	results, err := ix.SearchBatchWithStats(queries, k, opts...)
	if err != nil {
		return nil, err
	}
	out := make([][]Neighbor, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		out[i] = r.Neighbors
	}
	return out, nil
}

// SearchBatchWithStats is SearchBatch with per-query outcomes: each
// entry carries the query's neighbors, its §2.2 work stats, and an Err
// set only for that query's failure. The call-level error is reserved
// for structural problems that invalidate the whole batch (bad block
// length, non-positive k).
func (ix *Index) SearchBatchWithStats(queries []float32, k int, opts ...SearchOption) ([]BatchQueryResult, error) {
	dim := ix.ix.Dim
	if dim <= 0 || len(queries)%dim != 0 {
		return nil, fmt.Errorf("gqr: query block length %d not a multiple of dim %d", len(queries), dim)
	}
	if k <= 0 {
		return nil, fmt.Errorf("gqr: K must be positive, got %d", k)
	}
	var sc searchConfig
	for _, o := range opts {
		o(&sc)
	}
	ix.searchMu.Lock()
	if err := ix.refreshMethodLocked(); err != nil {
		ix.searchMu.Unlock()
		return nil, err
	}
	ix.searchMu.Unlock()
	nq := len(queries) / dim
	out := make([]BatchQueryResult, nq)

	workers := runtime.GOMAXPROCS(0)
	if workers > nq {
		workers = nq
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := query.NewSearcher(ix.ix, ix.method)
			qbuf := make([]float32, dim)
			for qi := range next {
				q := queries[qi*dim : (qi+1)*dim]
				if ix.metric == Angular {
					copy(qbuf, q)
					normalizeRow(qbuf)
					q = qbuf
				}
				res, err := s.Search(q, query.Options{
					K:             k,
					MaxCandidates: sc.maxCandidates,
					MaxBuckets:    sc.maxBuckets,
					EarlyStop:     sc.earlyStop,
					Radius:        sc.radius,
					Mu:            ix.mu,
					Profile:       sc.profile,
				})
				if err != nil {
					out[qi].Err = err
					continue
				}
				nbrs := make([]Neighbor, len(res.IDs))
				for i := range res.IDs {
					nbrs[i] = Neighbor{ID: int(res.IDs[i]), Distance: res.Dists[i]}
				}
				out[qi] = BatchQueryResult{Neighbors: nbrs, Stats: statsOf(res.Stats)}
			}
		}()
	}
	for qi := 0; qi < nq; qi++ {
		next <- qi
	}
	close(next)
	wg.Wait()
	return out, nil
}

// Stats describes the built index.
type Stats struct {
	Items      int
	Dim        int
	CodeLength int
	Tables     int
	// Buckets is the number of non-empty buckets per table.
	Buckets []int
	// Algorithm, Method and Metric echo the build configuration.
	Algorithm Algorithm
	Method    QueryMethod
	Metric    Metric
	// BuildTime is how long Build (training plus table construction)
	// took; zero for indexes restored via Load.
	BuildTime time.Duration
	// Adds counts vectors appended through Add since construction.
	Adds int64
	// MethodRebuilds counts how often the querying method's precomputed
	// per-table views were rebuilt because Add changed the buckets.
	MethodRebuilds int64
}

// Stats reports size, occupancy and lifecycle information.
func (ix *Index) Stats() Stats {
	s := Stats{
		Items:          ix.ix.N,
		Dim:            ix.ix.Dim,
		CodeLength:     ix.ix.Bits(),
		Tables:         len(ix.ix.Tables),
		Algorithm:      Algorithm(ix.ix.Tables[0].Hasher.Name()),
		Method:         QueryMethod(ix.method.Name()),
		Metric:         ix.metric,
		BuildTime:      ix.buildTime,
		Adds:           ix.adds.Load(),
		MethodRebuilds: ix.methodRebuilds.Load(),
	}
	for _, t := range ix.ix.Tables {
		s.Buckets = append(s.Buckets, t.BucketCount())
	}
	return s
}
