# Standard checks for the gqr repo. `make check` is the pre-commit
# gate: vet + full tests + race on the concurrent packages.
GO ?= go

.PHONY: check build vet test race bench

check: vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The metrics registry and the HTTP layer are the concurrency-heavy
# packages; keep them race-clean. The root package exercises the
# batch/sharded fan-out paths.
race:
	$(GO) test -race . ./internal/metrics ./internal/server

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .
