# Standard checks for the gqr repo. `make check` is the pre-commit
# gate: vet + full tests + race on the concurrent packages + the
# flight-recorder race stress.
GO ?= go

.PHONY: check build vet test race trace-stress durability lifecycle batch-stress fuzz-smoke bench bench-smoke bench-json

check: vet test race trace-stress durability lifecycle batch-stress bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The query hot path is lock-free (snapshot-based concurrent search),
# so the whole module must stay race-clean, not just the HTTP layer:
# the root package's Add+Search+batch stress test is the regression
# gate for the snapshot design.
race:
	$(GO) test -race ./...

# Flight-recorder stress under the race detector: concurrent traced
# searches and ring-buffer captures racing against /debug/querytrace
# readers and Chrome exports. The ring is lock-free (atomic pointer
# publication), so this is the regression gate for that design.
trace-stress:
	$(GO) test -race -run 'TraceStress' . ./internal/trace ./internal/server

# Crash-recovery suite under the race detector: WAL round-trips and
# torn tails at every byte offset, segment-file corruption, and the
# graceful/crash recover paths. This is the regression gate for the
# Add durability contract (acknowledged Adds are never silently lost).
durability:
	$(GO) test -race -run 'WAL|Durable|Durability|SaveFileAtomic|LoadRejects' . ./internal/wal

# Corpus-lifecycle oracle suite under the race detector: random
# Add/Delete/Update interleavings across seal/merge/crash-recovery
# boundaries must return search results identical to a fresh index
# over only the live vectors (all five query methods), and Compact
# must fold tombstones to the canonical saved form. This is the
# regression gate for the delete/update path (DESIGN.md §8f).
lifecycle:
	$(GO) test -race -run 'Lifecycle' .

# Batched-execution gate under the race detector: the batch-vs-
# sequential oracle (every querying method × rerank/tombstones/
# filter/tagmask/sharded/duplicates must return bit-identical
# neighbors AND work counters), the concurrent Add/Delete/seal stress
# of the batch engine's snapshot capture and pooled plan arena, and
# the server-side request coalescer. This is the regression gate for
# the batched query engine (DESIGN.md §8h).
batch-stress:
	$(GO) test -race -run 'TestBatch|TestShardedBatch' .
	$(GO) test -race -run 'TestCoalesc' ./internal/server

# Short fuzz runs over the two untrusted-input parsers: the index
# loader (GQRPUB1/GQRIDX3 streams, seeded with tombstone bitmaps and
# metadata slabs) and the WAL replayer (add, meta-add and delete
# frames). Ten seconds each — enough to catch a panic or an unbounded
# allocation from a hostile length field without stalling CI.
fuzz-smoke:
	$(GO) test -fuzz=FuzzLoad -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzReplay -fuzztime=10s -run '^$$' ./internal/wal

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Compile-and-run-once smoke over every benchmark in the module, so a
# refactor can't silently break bench code that only full `make bench`
# runs would have compiled (benchtime=1x keeps it to seconds).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Machine-readable ns/op + allocs/op for the evaluation-stage hot path
# (per-method Search at budget 1000, plain and re-ranked), the vecmath
# kernels and the build pipeline (whole-build plus train/code/freeze
# stages per learner, at p=1 and p=GOMAXPROCS), written as JSON for
# cross-commit perf diffing, plus the quantized re-ranking sweep
# (m × rerank-factor grid: recall@10, latency, ADC work per query).
# The documents embed host/run metadata (Go version, GOMAXPROCS, CPU
# count, commit, whether re-ranking ran) so snapshots are comparable
# across machines. BENCH_PR9.json, BENCH_PR9_d128.json (the
# evaluation-heavy d=128 regime) and BENCH_PR9_micro.json in the repo
# root are the committed snapshots from the re-ranking PR
# (BENCH_PR6.json: flight-recorder PR, BENCH_PR5.json: parallel-build
# overhaul, BENCH_PR4.json: evaluation-kernel snapshot).
# BENCH_PR10.json is the batched-execution snapshot (batch sizes
# 0/1/8/64/256 × querying methods at d=128, the coalesced-duplicates
# workload, QPS + p99 per row) from the batch-engine PR.
bench-json:
	$(GO) run ./cmd/gqr-bench -json BENCH_PR9_micro.json
	@cat BENCH_PR9_micro.json
	$(GO) run ./cmd/gqr-bench -nq 50 -k 10 -rerank BENCH_PR9.json
	@cat BENCH_PR9.json
	$(GO) run ./cmd/gqr-bench -nq 50 -k 10 -rerank-dim 128 -rerank BENCH_PR9_d128.json
	@cat BENCH_PR9_d128.json
	$(GO) run ./cmd/gqr-bench -nq 256 -k 10 -batch BENCH_PR10.json
	@cat BENCH_PR10.json
