# Standard checks for the gqr repo. `make check` is the pre-commit
# gate: vet + full tests + race on the concurrent packages + the
# flight-recorder race stress.
GO ?= go

.PHONY: check build vet test race trace-stress bench bench-smoke bench-json

check: vet test race trace-stress bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The query hot path is lock-free (snapshot-based concurrent search),
# so the whole module must stay race-clean, not just the HTTP layer:
# the root package's Add+Search+batch stress test is the regression
# gate for the snapshot design.
race:
	$(GO) test -race ./...

# Flight-recorder stress under the race detector: concurrent traced
# searches and ring-buffer captures racing against /debug/querytrace
# readers and Chrome exports. The ring is lock-free (atomic pointer
# publication), so this is the regression gate for that design.
trace-stress:
	$(GO) test -race -run 'TraceStress' . ./internal/trace ./internal/server

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Compile-and-run-once smoke over every benchmark in the module, so a
# refactor can't silently break bench code that only full `make bench`
# runs would have compiled (benchtime=1x keeps it to seconds).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Machine-readable ns/op + allocs/op for the evaluation-stage hot path
# (per-method Search at budget 1000), the vecmath kernels and the build
# pipeline (whole-build plus train/code/freeze stages per learner, at
# p=1 and p=GOMAXPROCS), written as JSON for cross-commit perf diffing.
# The document embeds host/run metadata (Go version, GOMAXPROCS, CPU
# count, commit) so snapshots are comparable across machines.
# BENCH_PR6.json in the repo root is the committed snapshot from the
# flight-recorder PR (BENCH_PR5.json: parallel-build overhaul,
# BENCH_PR4.json: evaluation-kernel snapshot).
bench-json:
	$(GO) run ./cmd/gqr-bench -json BENCH_PR6.json
	@cat BENCH_PR6.json
