# Standard checks for the gqr repo. `make check` is the pre-commit
# gate: vet + full tests + race on the concurrent packages.
GO ?= go

.PHONY: check build vet test race bench bench-smoke bench-json

check: vet test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The query hot path is lock-free (snapshot-based concurrent search),
# so the whole module must stay race-clean, not just the HTTP layer:
# the root package's Add+Search+batch stress test is the regression
# gate for the snapshot design.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Compile-and-run-once smoke over every benchmark in the module, so a
# refactor can't silently break bench code that only full `make bench`
# runs would have compiled (benchtime=1x keeps it to seconds).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Machine-readable ns/op + allocs/op for the evaluation-stage hot path
# (per-method Search at budget 1000), the vecmath kernels and the build
# pipeline (whole-build plus train/code/freeze stages per learner, at
# p=1 and p=GOMAXPROCS), written as JSON for cross-commit perf diffing.
# BENCH_PR5.json in the repo root is the committed snapshot from the
# parallel-build overhaul (BENCH_PR4.json is the prior evaluation-kernel
# snapshot).
bench-json:
	$(GO) run ./cmd/gqr-bench -json BENCH_PR5.json
	@cat BENCH_PR5.json
