# Standard checks for the gqr repo. `make check` is the pre-commit
# gate: vet + full tests + race on the concurrent packages.
GO ?= go

.PHONY: check build vet test race bench

check: vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The query hot path is lock-free (snapshot-based concurrent search),
# so the whole module must stay race-clean, not just the HTTP layer:
# the root package's Add+Search+batch stress test is the regression
# gate for the snapshot design.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .
