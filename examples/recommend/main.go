// Recommendation: nearest-neighbor lookup over item embeddings (the
// paper cites Google News personalization as a motivating application).
// A cheap learner (PCAH) plus GQR gives low-latency candidate
// generation without ITQ's iterative training — the trade the paper's
// §6.4 recommends when training cost matters.
//
//	go run ./examples/recommend
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gqr"
)

// catalogue simulates item embeddings from a matrix-factorization
// model: unit-ish vectors with a few dominant latent directions.
func catalogue(n, dim int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	// Latent factor loadings shared across the catalogue.
	factors := make([]float64, dim*8)
	for i := range factors {
		factors[i] = rng.NormFloat64()
	}
	vecs := make([]float32, n*dim)
	for i := 0; i < n; i++ {
		var latent [8]float64
		for l := range latent {
			latent[l] = rng.NormFloat64() / float64(l+1)
		}
		for j := 0; j < dim; j++ {
			var v float64
			for l, lv := range latent {
				v += factors[j*8+l] * lv
			}
			vecs[i*dim+j] = float32(v + rng.NormFloat64()*0.05)
		}
	}
	return vecs
}

func main() {
	const (
		items = 50000
		dim   = 48
	)
	vecs := catalogue(items, dim, 11)

	start := time.Now()
	ix, err := gqr.Build(vecs, dim,
		gqr.WithAlgorithm(gqr.PCAH), // no iterative training
		gqr.WithQueryMethod(gqr.GQR))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalogue of %d items indexed in %s (PCAH trains in one pass)\n",
		items, time.Since(start).Round(time.Millisecond))

	// "Users who liked item X": query with item embeddings, exclude the
	// item itself, serve the top 5 as recommendations.
	for _, item := range []int{0, 123, 4567} {
		q := vecs[item*dim : (item+1)*dim]
		start := time.Now()
		nbrs, err := ix.Search(q, 6, gqr.WithMaxCandidates(1500))
		if err != nil {
			log.Fatal(err)
		}
		lat := time.Since(start)
		fmt.Printf("item %5d -> recommend:", item)
		for _, nb := range nbrs {
			if nb.ID == item {
				continue // the item itself
			}
			fmt.Printf(" %d", nb.ID)
		}
		fmt.Printf("   (%.2fms)\n", float64(lat.Microseconds())/1000)
	}
}
