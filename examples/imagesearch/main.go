// Image retrieval: the paper's motivating workload. We simulate a
// library of GIST-like image descriptors, then compare Hamming ranking
// (the incumbent querying method) against GQR at equal candidate
// budgets — reproducing the paper's headline result in miniature: the
// same index, the same budget, more true neighbors found.
//
//	go run ./examples/imagesearch
package main

import (
	"fmt"
	"log"

	"gqr"
	"gqr/internal/dataset"
)

func main() {
	// A descriptor corpus with correlated dimensions (what makes
	// PCA-family hashing work on real images). 20k "images", 64-dim.
	ds := dataset.Load(dataset.CorpusCIFAR, 0.5, 50, 10)
	fmt.Printf("corpus: %d descriptors, dim %d, %d queries\n", ds.N(), ds.Dim, ds.NQ())

	for _, method := range []gqr.QueryMethod{gqr.HR, gqr.GQR} {
		ix, err := gqr.Build(ds.Vectors, ds.Dim,
			gqr.WithAlgorithm(gqr.ITQ),
			gqr.WithQueryMethod(method),
			gqr.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		// Evaluate ~2% of the corpus per query.
		budget := ds.N() / 50
		var recall float64
		for qi := 0; qi < ds.NQ(); qi++ {
			nbrs, err := ix.Search(ds.Query(qi), 10, gqr.WithMaxCandidates(budget))
			if err != nil {
				log.Fatal(err)
			}
			found := make(map[int]bool, len(nbrs))
			for _, nb := range nbrs {
				found[nb.ID] = true
			}
			hit := 0
			for _, id := range ds.GroundTruth[qi] {
				if found[int(id)] {
					hit++
				}
			}
			recall += float64(hit) / float64(len(ds.GroundTruth[qi]))
		}
		fmt.Printf("%-4s  budget %d/query  recall@10 = %.3f\n",
			method, budget, recall/float64(ds.NQ()))
	}
	fmt.Println("\nSame hash functions, same budget — the querying method alone")
	fmt.Println("decides how many true neighbors the budget buys (paper Figure 8).")
}
