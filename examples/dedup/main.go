// De-duplication: find near-duplicate records by radius search (the
// paper cites de-duplication among the motivating applications). The QD
// early-stop rule (§4.1 of the paper) makes this efficient: because
// quantization distance lower-bounds true distance, probing stops as
// soon as no unseen bucket can contain anything within the duplicate
// radius — no candidate budget to tune.
//
//	go run ./examples/dedup
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gqr"
)

func main() {
	const (
		n   = 20000
		dim = 24
	)
	rng := rand.New(rand.NewSource(3))
	vecs := make([]float32, 0, n*dim)
	// 95% unique records...
	unique := n * 95 / 100
	for i := 0; i < unique; i++ {
		for j := 0; j < dim; j++ {
			vecs = append(vecs, float32(rng.NormFloat64()*3))
		}
	}
	// ...and 5% near-duplicates of earlier records.
	type dup struct{ original, copyID int }
	var planted []dup
	for i := unique; i < n; i++ {
		src := rng.Intn(unique)
		planted = append(planted, dup{original: src, copyID: i})
		for j := 0; j < dim; j++ {
			vecs = append(vecs, vecs[src*dim+j]+float32(rng.NormFloat64()*0.01))
		}
	}

	ix, err := gqr.Build(vecs, dim, gqr.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}

	// For every planted duplicate, the nearest non-self neighbor must
	// be its original. Early stop bounds the work per query.
	const radius = 0.5
	found := 0
	for _, d := range planted {
		q := vecs[d.copyID*dim : (d.copyID+1)*dim]
		nbrs, err := ix.Search(q, 2, gqr.WithEarlyStop())
		if err != nil {
			log.Fatal(err)
		}
		for _, nb := range nbrs {
			if nb.ID != d.copyID && nb.Distance < radius {
				if nb.ID == d.original {
					found++
				}
				break
			}
		}
	}
	fmt.Printf("planted duplicates: %d, recovered: %d (%.1f%%)\n",
		len(planted), found, 100*float64(found)/float64(len(planted)))
	fmt.Println("early stop makes each lookup exact without a hand-tuned budget")
}
