// Quickstart: build a learned-hash index over random vectors and query
// it with generate-to-probe quantization-distance ranking (GQR).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gqr"
)

func main() {
	const (
		n   = 10000
		dim = 32
	)
	// Synthetic data: a handful of Gaussian clusters, the shape real
	// descriptor collections have.
	rng := rand.New(rand.NewSource(42))
	centers := make([][]float64, 8)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64() * 5
		}
	}
	vecs := make([]float32, n*dim)
	for i := 0; i < n; i++ {
		ctr := centers[rng.Intn(len(centers))]
		for j := 0; j < dim; j++ {
			vecs[i*dim+j] = float32(ctr[j] + rng.NormFloat64())
		}
	}

	// Build with the defaults: ITQ learning, GQR querying, code length
	// from the log2(n/10) rule.
	ix, err := gqr.Build(vecs, dim, gqr.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("index: %d vectors, %d-bit codes, %d non-empty buckets\n",
		st.Items, st.CodeLength, st.Buckets[0])

	// Query with a perturbed copy of item 0: it must come back first.
	q := make([]float32, dim)
	for j := range q {
		q[j] = vecs[j] + float32(rng.NormFloat64()*0.01)
	}
	// The candidate budget is the recall/latency knob: evaluating 500
	// of the 10000 items is usually enough for the true neighbors.
	nbrs, err := ix.Search(q, 5, gqr.WithMaxCandidates(500))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("5 nearest neighbors (id, distance):")
	for _, nb := range nbrs {
		fmt.Printf("  %5d  %.4f\n", nb.ID, nb.Distance)
	}
	if nbrs[0].ID == 0 {
		fmt.Println("item 0 found first, as expected")
	}
}
