// Semantic search: cosine-similarity retrieval over text-style
// embeddings (the GloVe workloads of the paper's appendix, Table 3).
// Word/sentence embeddings are compared by angle, not magnitude, so the
// index is built with the Angular metric: vectors are normalized onto
// the unit sphere where Euclidean distance is monotone in cosine
// similarity. Batches of queries fan out across cores via SearchBatch.
//
//	go run ./examples/semantic
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gqr"
)

// embeddings fabricates GloVe-like vectors: topic directions plus
// per-word jitter, with magnitudes varying by "word frequency" (which
// cosine retrieval must ignore — that is the point of Angular).
func embeddings(words, dim, topics int, seed int64) ([]float32, []int) {
	rng := rand.New(rand.NewSource(seed))
	topicDirs := make([][]float64, topics)
	for t := range topicDirs {
		topicDirs[t] = make([]float64, dim)
		for j := range topicDirs[t] {
			topicDirs[t][j] = rng.NormFloat64()
		}
	}
	vecs := make([]float32, words*dim)
	topicOf := make([]int, words)
	for w := 0; w < words; w++ {
		t := rng.Intn(topics)
		topicOf[w] = t
		scale := 0.5 + rng.Float64()*4 // frequency-dependent magnitude
		for j := 0; j < dim; j++ {
			vecs[w*dim+j] = float32(scale * (topicDirs[t][j] + rng.NormFloat64()*0.4))
		}
	}
	return vecs, topicOf
}

func main() {
	const (
		words  = 40000
		dim    = 32
		topics = 25
	)
	vecs, topicOf := embeddings(words, dim, topics, 9)

	ix, err := gqr.Build(vecs, dim,
		gqr.WithMetric(gqr.Angular), // cosine retrieval
		gqr.WithAlgorithm(gqr.ITQ),
		gqr.WithSeed(10))
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("vocabulary of %d embeddings indexed (%d-bit codes, %s metric)\n",
		st.Items, st.CodeLength, st.Metric)

	// A batch of "query words": their neighbors should share the topic.
	queryIDs := []int{11, 222, 3333, 7777, 12345, 23456}
	batch := make([]float32, 0, len(queryIDs)*dim)
	for _, id := range queryIDs {
		batch = append(batch, vecs[id*dim:(id+1)*dim]...)
	}
	start := time.Now()
	results, err := ix.SearchBatch(batch, 6, gqr.WithMaxCandidates(1200))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch of %d cosine queries in %s\n\n", len(queryIDs), time.Since(start).Round(time.Microsecond))

	sameTopic, total := 0, 0
	for bi, id := range queryIDs {
		fmt.Printf("word %5d (topic %2d) ->", id, topicOf[id])
		for _, nb := range results[bi] {
			if nb.ID == id {
				continue
			}
			cos := 1 - nb.Distance*nb.Distance/2 // chordal -> cosine
			fmt.Printf(" %d(cos %.2f)", nb.ID, cos)
			if topicOf[nb.ID] == topicOf[id] {
				sameTopic++
			}
			total++
		}
		fmt.Println()
	}
	fmt.Printf("\n%d/%d retrieved neighbors share the query's topic\n", sameTopic, total)
}
