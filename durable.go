package gqr

import (
	"encoding/binary"
	"fmt"
	"io"
	mathbits "math/bits"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"gqr/internal/index"
	"gqr/internal/wal"
)

// Crash-safe ingest. A durable index owns a data directory with three
// kinds of files, every one written atomically (temp + fsync + rename):
//
//	base.gqridx       the index as of EnableDurability (GQRPUB1; the
//	                  caller keeps the matching vector block, e.g. an
//	                  fvecs file — base vectors are never duplicated)
//	seg-<seq>.gqrseg  one frozen segment: its vectors plus per-table
//	                  buckets (GQRSEG2), written when the memtable
//	                  seals and when segments merge
//	wal-<n>.log       the write-ahead log of Adds, Deletes and Updates
//	                  since the last seal, first add id n; appended and
//	                  fsynced before each mutation returns, rotated at
//	                  every seal, deleted once the covering segment file
//	                  and tombstone bitmap are durable
//	tombs.bits        the tombstone bitmap sidecar, rewritten at every
//	                  seal/compact/close that retires delete records
//
// The durability contract of Add/Delete/Update: when the call returns
// nil with the WAL on, the mutation is on stable storage and Recover
// reconstructs it bit-identically. With WithoutAddWAL only sealed
// segments and the tombstone sidecar are durable.
const baseFileName = "base.gqridx"

const tombsFileName = "tombs.bits"

// durability is the index's durable-storage state. Mutable fields are
// guarded by the index's writeMu; dir/walOn are immutable.
type durability struct {
	dir   string
	walOn bool
	w     *wal.Writer
	// walSizes tracks every live log file's size (current writer
	// included) for the gqr_index_wal_bytes gauge. It has its own lock:
	// background segment persists retire entries (dropWAL) without the
	// index's writer lock, concurrently with Add updating the current
	// writer's entry under it.
	szMu     sync.Mutex
	walSizes map[string]int64
	// tombMu serializes tombstone-sidecar writes; lastWrittenDead is the
	// dead count the sidecar (or the base file) already covers. Because
	// ids are never un-deleted, the bitmap is a pure function of the dead
	// count, so a write is needed — and ordering is safe — only when the
	// count grew. Background persists write concurrently with Compact and
	// Close, hence the dedicated lock.
	tombMu          sync.Mutex
	lastWrittenDead int
}

func (d *durability) walPath(firstID int) string {
	return filepath.Join(d.dir, fmt.Sprintf("wal-%016d.log", firstID))
}

func (d *durability) segPath(seq uint64) string {
	return filepath.Join(d.dir, fmt.Sprintf("seg-%016x.gqrseg", seq))
}

// append logs one Add; when it returns nil the record is synced.
func (d *durability) append(id, meta uint64, vec []float32) error {
	if d.w == nil {
		return fmt.Errorf("wal unavailable (a previous rotation failed)")
	}
	if err := d.w.AppendMeta(id, meta, vec); err != nil {
		return err
	}
	d.szMu.Lock()
	d.walSizes[d.w.Path()] = d.w.Bytes()
	d.szMu.Unlock()
	return nil
}

// appendDelete logs one Delete; when it returns nil the record is
// synced — the fsync-before-ack point of the Delete path.
func (d *durability) appendDelete(id uint64) error {
	if d.w == nil {
		return fmt.Errorf("wal unavailable (a previous rotation failed)")
	}
	if err := d.w.AppendDelete(id); err != nil {
		return err
	}
	d.szMu.Lock()
	d.walSizes[d.w.Path()] = d.w.Bytes()
	d.szMu.Unlock()
	return nil
}

// rotate closes the current log (returning its path, "" when none) and
// opens a fresh one whose first record will be item nextID.
func (d *durability) rotate(nextID int) (old string, err error) {
	if !d.walOn {
		return "", nil
	}
	if d.w != nil {
		old = d.w.Path()
		d.szMu.Lock()
		d.walSizes[old] = d.w.Bytes()
		d.szMu.Unlock()
		if cerr := d.w.Close(); cerr != nil {
			return "", cerr
		}
		d.w = nil
	}
	w, err := wal.Create(d.walPath(nextID))
	if err != nil {
		return "", err
	}
	d.w = w
	d.szMu.Lock()
	d.walSizes[w.Path()] = 0
	d.szMu.Unlock()
	return old, nil
}

// dropWAL deletes a retired log file (its Adds are now covered by a
// durable segment file).
func (d *durability) dropWAL(path string) {
	os.Remove(path)
	d.szMu.Lock()
	delete(d.walSizes, path)
	d.szMu.Unlock()
}

// writeSegment persists one frozen segment atomically and returns its
// path.
func (d *durability) writeSegment(seg *index.Segment, vecs []float32, meta []uint64, qcodes []uint8, dim int) (string, error) {
	path := d.segPath(seg.Seq())
	err := atomicWriteFile(path, func(w io.Writer) error {
		return index.WriteSegment(w, seg, vecs, meta, qcodes, dim)
	})
	if err != nil {
		return "", err
	}
	return path, nil
}

// writeTombs persists the tombstone bitmap sidecar atomically:
// "GQRTMB1\0", the bit count as u32, then the bitmap words. Writes are
// skipped unless dead grew past what is already durable — deletes are
// monotone, so the bitmap for a larger count supersedes any earlier
// one, and concurrent writers (background seal persists vs. Compact)
// cannot regress the file.
func (d *durability) writeTombs(words []uint64, dead, bits int) error {
	if dead == 0 {
		return nil
	}
	d.tombMu.Lock()
	defer d.tombMu.Unlock()
	if dead <= d.lastWrittenDead {
		return nil
	}
	path := filepath.Join(d.dir, tombsFileName)
	err := atomicWriteFile(path, func(w io.Writer) error {
		hdr := make([]byte, 12)
		copy(hdr, "GQRTMB1\x00")
		binary.LittleEndian.PutUint32(hdr[8:], uint32(bits))
		if _, err := w.Write(hdr); err != nil {
			return err
		}
		buf := make([]byte, 8*len(words))
		for i, wd := range words {
			binary.LittleEndian.PutUint64(buf[8*i:], wd)
		}
		_, err := w.Write(buf)
		return err
	})
	if err != nil {
		return err
	}
	d.lastWrittenDead = dead
	return nil
}

// loadTombs reads the tombstone bitmap sidecar, returning nil words
// when the file does not exist. The returned dead count is the bitmap's
// popcount.
func loadTombs(dir string) (words []uint64, dead int, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, tombsFileName))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < 12 || string(raw[:8]) != "GQRTMB1\x00" {
		return nil, 0, fmt.Errorf("bad tombstone sidecar header")
	}
	bits := int(binary.LittleEndian.Uint32(raw[8:]))
	nw := (bits + 63) / 64
	if len(raw) != 12+8*nw {
		return nil, 0, fmt.Errorf("tombstone sidecar is %d bytes, want %d for %d bits", len(raw), 12+8*nw, bits)
	}
	words = make([]uint64, nw)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(raw[12+8*i:])
		dead += mathbits.OnesCount64(words[i])
	}
	return words, dead, nil
}

func (d *durability) walBytes() int64 {
	d.szMu.Lock()
	defer d.szMu.Unlock()
	var n int64
	for _, b := range d.walSizes {
		n += b
	}
	return n
}

func (d *durability) close() error {
	if d.w == nil {
		return nil
	}
	err := d.w.Close()
	d.w = nil
	return err
}

// EnableDurability attaches a data directory to the index: the current
// state is written to base.gqridx, and from then on every Add is
// WAL-logged before it is acknowledged (unless WithoutAddWAL) and every
// sealed or merged segment gets its own file. Only the durability
// options of opts are consulted (WithoutAddWAL); everything else is
// fixed at Build. Restart with Recover, passing the same vector block
// the index holds now.
func (ix *Index) EnableDurability(dir string, opts ...Option) error {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	if ix.closed {
		return fmt.Errorf("gqr: index is closed")
	}
	if ix.dur != nil {
		return fmt.Errorf("gqr: durability already enabled")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("gqr: enable durability: %w", err)
	}
	// Seal first: base.gqridx then covers every current item, so the
	// pre-base segments never need files of their own (they sit below
	// the merge barrier and are never merged with post-base segments).
	ix.live.SealMemtable()
	if err := atomicWriteFile(filepath.Join(dir, baseFileName), ix.saveLocked); err != nil {
		return fmt.Errorf("gqr: enable durability: %w", err)
	}
	d := &durability{dir: dir, walOn: !cfg.walOff, walSizes: make(map[string]int64)}
	// The base file embeds the tombstone bitmap (it saves as GQRIDX3
	// when any item is dead), so the sidecar only needs to cover deletes
	// past this point.
	d.lastWrittenDead = ix.live.Tombstones()
	if d.walOn {
		if _, err := d.rotate(ix.live.N); err != nil {
			return fmt.Errorf("gqr: enable durability: %w", err)
		}
	}
	ix.mergeBarrier = ix.live.N
	ix.dur = d
	return nil
}

// Recover restores a durable index from its data directory: the base
// file is loaded (vectors is the base vector block, exactly what was
// passed to Build/Load before EnableDurability), segment files are
// re-attached, and the write-ahead logs are replayed — every
// acknowledged Add comes back bit-identically. Recovery ends with a
// checkpoint: recovered WAL records are sealed into a durable segment
// file and the old logs are deleted, so a crash during the next run
// replays only its own Adds.
//
// Anything inconsistent — a truncated or corrupted segment file, a gap
// in id coverage — is an error naming the file: recovery never loads
// silently-wrong data. A torn WAL tail is not an error (it is the
// unacknowledged record of a crash mid-append) and is discarded.
func Recover(dir string, vectors []float32, dim int, opts ...Option) (*Index, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	basePath := filepath.Join(dir, baseFileName)
	f, err := os.Open(basePath)
	if err != nil {
		return nil, fmt.Errorf("gqr: recover: %w", err)
	}
	ix, err := loadUnpublished(f, vectors, dim, cfg)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("gqr: recover: base index: %w", err)
	}
	baseID := ix.live.N

	// Leftover temp files are dead weight from interrupted atomic
	// writes; their final-named targets never existed.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(tmps) > 0 {
		for _, t := range tmps {
			os.Remove(t)
		}
	}

	if err := ix.recoverSegments(dir, dim); err != nil {
		return nil, err
	}
	// Tombstones come from three durable homes, all unioned: the base
	// file's embedded bitmap (already in live), the sidecar, and delete
	// records still in the write-ahead logs.
	tombWords, _, terr := loadTombs(dir)
	if terr != nil {
		return nil, fmt.Errorf("gqr: recover: %w", terr)
	}
	if tombWords != nil {
		ix.live.UnionTombs(tombWords)
	}
	replayed, deleted, err := ix.recoverWALs(dir, dim)
	if err != nil {
		return nil, err
	}
	ix.live.RecomputeTombstones()

	// Checkpoint: everything recovered becomes segment-durable and the
	// unioned bitmap lands in the sidecar, then the replayed logs are
	// retired and a fresh one opened.
	d := &durability{dir: dir, walOn: !cfg.walOff, walSizes: make(map[string]int64)}
	ix.dur = d
	ix.mergeBarrier = baseID
	if seg := ix.live.SealMemtable(); seg != nil {
		vecs := ix.live.Data[seg.MinID()*dim : (seg.MinID()+seg.Span())*dim]
		var meta []uint64
		if slab := ix.live.MetaSlab(); slab != nil {
			meta = slab[seg.MinID() : seg.MinID()+seg.Span()]
		}
		path, err := d.writeSegment(seg, vecs, meta, ix.live.CodesRange(seg.MinID(), seg.Span()), dim)
		if err != nil {
			return nil, fmt.Errorf("gqr: recover: checkpoint: %w", err)
		}
		seg.SetOnZero(func() { os.Remove(path) })
	}
	if err := d.writeTombs(ix.live.FoldedTombWords(), ix.live.Tombstones(), ix.live.N); err != nil {
		return nil, fmt.Errorf("gqr: recover: checkpoint: %w", err)
	}
	if walFiles, _ := filepath.Glob(filepath.Join(dir, "wal-*.log")); len(walFiles) > 0 {
		for _, wf := range walFiles {
			os.Remove(wf)
		}
	}
	if d.walOn {
		if _, err := d.rotate(ix.live.N); err != nil {
			return nil, fmt.Errorf("gqr: recover: %w", err)
		}
	}
	ix.adds.Add(int64(replayed))
	ix.deletes.Add(int64(deleted))
	if err := ix.publishLocked(); err != nil {
		return nil, err
	}
	return ix, nil
}

// recoverSegments re-attaches the directory's segment files in id
// order. Files fully covered by what is already loaded (stale inputs
// of a merge that completed before the crash) are deleted; a file that
// neither extends coverage exactly nor is fully covered means the
// directory is inconsistent, and recovery fails naming it.
func (ix *Index) recoverSegments(dir string, dim int) error {
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.gqrseg"))
	if err != nil {
		return fmt.Errorf("gqr: recover: %w", err)
	}
	type segFile struct {
		path   string
		seg    *index.Segment
		vecs   []float32
		meta   []uint64
		qcodes []uint8
	}
	files := make([]segFile, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return fmt.Errorf("gqr: recover: %w", err)
		}
		seg, vecs, meta, qcodes, rerr := index.ReadSegment(f, dim, len(ix.live.Tables))
		f.Close()
		if rerr != nil {
			return fmt.Errorf("gqr: recover: segment %s: %w", filepath.Base(p), rerr)
		}
		files = append(files, segFile{path: p, seg: seg, vecs: vecs, meta: meta, qcodes: qcodes})
	}
	// Ascending start; at equal start the widest file first, so a
	// merged segment supersedes the inputs it covers.
	sort.Slice(files, func(i, j int) bool {
		if files[i].seg.MinID() != files[j].seg.MinID() {
			return files[i].seg.MinID() < files[j].seg.MinID()
		}
		return files[i].seg.Span() > files[j].seg.Span()
	})
	for _, sf := range files {
		end := sf.seg.MinID() + sf.seg.Span()
		switch {
		case end <= ix.live.N:
			// Fully covered (by the base or by a wider merged file):
			// a stale leftover whose deletion the crash interrupted.
			os.Remove(sf.path)
		case sf.seg.MinID() == ix.live.N:
			if err := ix.live.AppendSegment(sf.seg, sf.vecs, sf.meta, sf.qcodes); err != nil {
				return fmt.Errorf("gqr: recover: segment %s: %w", filepath.Base(sf.path), err)
			}
			path := sf.path
			sf.seg.SetOnZero(func() { os.Remove(path) })
		default:
			return fmt.Errorf("gqr: recover: segment %s covers [%d,%d) but coverage ends at %d (gap or partial overlap)",
				filepath.Base(sf.path), sf.seg.MinID(), end, ix.live.N)
		}
	}
	return nil
}

// recoverWALs replays the directory's logs in id order onto the live
// index. Add records already covered by a segment file are skipped; an
// add that would leave an id gap is an error (a missing or deleted
// log); a torn tail ends its log cleanly. Delete records re-tombstone
// their id — idempotent against the bitmap homes that may already
// cover them — and must reference an id the replay has seen.
func (ix *Index) recoverWALs(dir string, dim int) (replayed, deleted int, err error) {
	walFiles, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return 0, 0, fmt.Errorf("gqr: recover: %w", err)
	}
	sort.Strings(walFiles) // wal-%016d: lexicographic == numeric
	for _, wf := range walFiles {
		_, err := wal.Replay(wf, dim, func(op wal.Op, id, meta uint64, vec []float32) error {
			if op == wal.OpDelete {
				if id >= uint64(ix.live.N) {
					return fmt.Errorf("delete record id %d beyond coverage %d", id, ix.live.N)
				}
				if ix.live.Delete(int32(id)) {
					deleted++
				}
				return nil
			}
			switch {
			case id < uint64(ix.live.N):
				return nil // already durable in a segment file
			case id > uint64(ix.live.N):
				return fmt.Errorf("record id %d leaves a gap at %d", id, ix.live.N)
			}
			// The logged vector is post-normalization; applying it
			// directly (no re-normalize) keeps recovery bit-identical.
			if _, err := ix.live.AddMeta(vec, meta); err != nil {
				return err
			}
			replayed++
			return nil
		})
		if err != nil {
			return 0, 0, fmt.Errorf("gqr: recover: wal %s: %w", filepath.Base(wf), err)
		}
	}
	return replayed, deleted, nil
}
