//go:build race

package gqr

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
