// Package gqr is a Go implementation of learning-to-hash (L2H)
// approximate nearest-neighbor search with quantization-distance
// querying, reproducing "A General and Efficient Querying Method for
// Learning to Hash" (Li et al., SIGMOD 2018).
//
// # Background
//
// L2H systems answer k-nearest-neighbor queries in two stages: a
// learning stage trains similarity-preserving hash functions that map
// vectors to short binary codes (this package implements ITQ, PCAH,
// spectral hashing, K-means hashing and an LSH baseline), and a
// querying stage decides which hash buckets to probe for a query. Most
// systems probe buckets in ascending Hamming distance (Hamming
// ranking). The paper's observation is that the Hamming distance is too
// coarse: with m-bit codes it only distinguishes m+1 bucket classes.
//
// Quantization distance (QD) replaces it: the QD from query q to bucket
// b is the minimum L1 perturbation of q's projected (real-valued) hash
// values that would move q into b. QD lower-bounds the true Euclidean
// distance to every item in the bucket (up to a constant), distinguishes
// up to 2^m buckets, and admits an incremental generate-to-probe
// algorithm (GQR) that yields the next-best bucket in O(log f) from a
// min-heap of "flipping vectors" without ever sorting all buckets.
//
// # Quick start
//
//	vecs := ...               // n×dim row-major []float32
//	ix, err := gqr.Build(vecs, dim)
//	if err != nil { ... }
//	nbrs, err := ix.Search(query, 10)   // 10 nearest neighbors
//
// Build options select the learner, querying method, code length and
// table count; search options bound the candidate budget (the
// recall/latency knob):
//
//	ix, _ := gqr.Build(vecs, dim,
//	        gqr.WithAlgorithm(gqr.PCAH),
//	        gqr.WithQueryMethod(gqr.GQR))
//	nbrs, _ := ix.Search(q, 10, gqr.WithMaxCandidates(2000))
//
// The internal packages contain the substrates: hash (learners), query
// (HR/GHR/QR/GQR/MIH probing), index (hash tables), quantization
// (PQ/OPQ/IMI comparison system), dataset (synthetic corpora and fvecs
// IO), vecmath (eigen/SVD linear algebra) and bench (the experiment
// harness that regenerates every table and figure of the paper — see
// cmd/gqr-bench and EXPERIMENTS.md).
package gqr
