package gqr

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the GQRPUB1 loader. Load consumes
// untrusted files (the durability layer replays base files off disk
// after a crash), so whatever the bytes, it must return an error or a
// consistent index — never panic, never allocate unboundedly from a
// length field, never accept a structure that disagrees with the
// vector block.
func FuzzLoad(f *testing.F) {
	const dim = 4
	vecs := durVecs(30, dim, 30)
	ix, err := Build(vecs, dim, WithSeed(31))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte("GQRPUB1\x00"))
	f.Add([]byte{})
	// A GQRIDX3 stream too: tombstones plus a metadata slab, so the
	// fuzzer mutates the v3-only blocks (bitmap, dead count, meta flag).
	if err := ix.SetMetadata(make([]uint64, 30)); err != nil {
		f.Fatal(err)
	}
	if _, err := ix.AddWithMeta(vecs[:dim], 0b11); err != nil {
		f.Fatal(err)
	}
	for _, id := range []int{2, 17, 30} {
		if err := ix.Delete(id); err != nil {
			f.Fatal(err)
		}
	}
	grown := append(append([]float32{}, vecs...), vecs[:dim]...)
	buf.Reset()
	if err := ix.Save(&buf); err != nil {
		f.Fatal(err)
	}
	validV3 := buf.Bytes()
	f.Add(validV3)
	f.Add(validV3[:len(validV3)/2])
	f.Add(validV3[:len(validV3)-7])
	// And a GQRIDX4 stream: quantizer blob, rerank factor and the code
	// slab, so the fuzzer mutates the v4-only blocks (blob length, shape
	// header, factor bounds, slab size) too.
	ix4, err := Build(vecs, dim, WithSeed(31), WithReranking(2, 8, 2))
	if err != nil {
		f.Fatal(err)
	}
	if err := ix4.Delete(5); err != nil {
		f.Fatal(err)
	}
	buf.Reset()
	if err := ix4.Save(&buf); err != nil {
		f.Fatal(err)
	}
	validV4 := buf.Bytes()
	f.Add(validV4)
	f.Add(validV4[:len(validV4)/2])
	f.Add(validV4[:len(validV4)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, block := range [][]float32{vecs, grown} {
			out, err := Load(bytes.NewReader(data), block, dim)
			if err != nil {
				continue
			}
			// Anything that loads must be internally consistent and usable.
			st := out.Stats()
			if st.Items != len(block)/dim {
				t.Fatalf("loaded index claims %d items over a %d-vector block", st.Items, len(block)/dim)
			}
			if st.LiveItems+st.Tombstones != st.Items || st.LiveItems < 0 {
				t.Fatalf("inconsistent lifecycle counts: items=%d live=%d tombstones=%d",
					st.Items, st.LiveItems, st.Tombstones)
			}
			if _, err := out.Search(block[:dim], 3); err != nil {
				t.Fatalf("loaded index cannot search: %v", err)
			}
		}
	})
}
