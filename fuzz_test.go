package gqr

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the GQRPUB1 loader. Load consumes
// untrusted files (the durability layer replays base files off disk
// after a crash), so whatever the bytes, it must return an error or a
// consistent index — never panic, never allocate unboundedly from a
// length field, never accept a structure that disagrees with the
// vector block.
func FuzzLoad(f *testing.F) {
	const dim = 4
	vecs := durVecs(30, dim, 30)
	ix, err := Build(vecs, dim, WithSeed(31))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte("GQRPUB1\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Load(bytes.NewReader(data), vecs, dim)
		if err != nil {
			return
		}
		// Anything that loads must be internally consistent and usable.
		st := out.Stats()
		if st.Items != len(vecs)/dim {
			t.Fatalf("loaded index claims %d items over a %d-vector block", st.Items, len(vecs)/dim)
		}
		if _, err := out.Search(vecs[:dim], 3); err != nil {
			t.Fatalf("loaded index cannot search: %v", err)
		}
	})
}
