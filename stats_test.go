package gqr

import (
	"testing"

	"gqr/internal/query"
)

// workOf strips the timing and shard-attribution fields so work
// counters can be compared exactly (clock reads differ run to run, and
// shard attribution exists only on the merged fan-out stats).
func workOf(s SearchStats) SearchStats {
	s.RetrievalTime, s.EvaluationTime = 0, 0
	s.ShardCount, s.SlowestShard, s.SlowestShardTime = 0, 0, 0
	return s
}

// TestSearchWithStatsMatchesInternal verifies, for every querying
// method, that the public SearchWithStats reports exactly the work the
// internal searcher performed with the same options.
func TestSearchWithStatsMatchesInternal(t *testing.T) {
	ds := demoData(t)
	for _, method := range []QueryMethod{HR, QR, GHR, GQR, MIH} {
		ix, err := Build(ds.Vectors, ds.Dim, WithQueryMethod(method), WithSeed(21))
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		for qi := 0; qi < ds.NQ(); qi++ {
			q := ds.Query(qi)
			nbrs, st, err := ix.SearchWithStats(q, 5, WithMaxCandidates(100))
			if err != nil {
				t.Fatalf("%s: %v", method, err)
			}
			// An independent searcher over the same snapshot must do the
			// identical work.
			snap := ix.snap.Load()
			ref := query.NewSearcher(snap.view, snap.method)
			res, err := ref.Search(q, query.Options{K: 5, MaxCandidates: 100, Mu: snap.mu})
			if err != nil {
				t.Fatalf("%s: %v", method, err)
			}
			if got, want := workOf(st), workOf(statsOf(res.Stats)); got != want {
				t.Fatalf("%s query %d: stats %+v != internal %+v", method, qi, got, want)
			}
			if len(nbrs) != len(res.IDs) {
				t.Fatalf("%s query %d: %d neighbors, internal %d", method, qi, len(nbrs), len(res.IDs))
			}
			// Work-counter sanity in the paper's terms.
			if st.Candidates == 0 || st.BucketsProbed == 0 || st.BucketsGenerated < st.BucketsProbed {
				t.Fatalf("%s query %d: implausible stats %+v", method, qi, st)
			}
			// HR/QR/MIH only emit non-empty buckets; generate-to-probe
			// methods may also generate empty ones.
			if (method == HR || method == QR || method == MIH) && st.BucketsGenerated != st.BucketsProbed {
				t.Fatalf("%s query %d: generated %d != probed %d for a non-generating method",
					method, qi, st.BucketsGenerated, st.BucketsProbed)
			}
		}
	}
}

func TestSearchWithStatsProfile(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(22))
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := ix.SearchWithStats(ds.Query(0), 5, WithMaxCandidates(200), WithProfile())
	if err != nil {
		t.Fatal(err)
	}
	if st.RetrievalTime <= 0 || st.EvaluationTime <= 0 {
		t.Fatalf("profile requested but times empty: %+v", st)
	}
	_, st2, err := ix.SearchWithStats(ds.Query(0), 5, WithMaxCandidates(200))
	if err != nil {
		t.Fatal(err)
	}
	if st2.RetrievalTime != 0 || st2.EvaluationTime != 0 {
		t.Fatalf("times populated without WithProfile: %+v", st2)
	}
}

func TestSearchWithStatsEarlyStop(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	stopped := false
	for qi := 0; qi < ds.NQ(); qi++ {
		_, st, err := ix.SearchWithStats(ds.Query(qi), 3, WithEarlyStop())
		if err != nil {
			t.Fatal(err)
		}
		if st.EarlyStopped {
			stopped = true
			// Early stop prunes probing: strictly less than the whole
			// bucket population must have been generated.
			if st.BucketsGenerated >= ix.live.BucketCount(0) {
				t.Fatalf("early stop did not prune: %+v", st)
			}
		}
	}
	if !stopped {
		t.Fatal("QD early stop never fired on the demo corpus")
	}
}

func TestShardedSearchWithStatsMergesShards(t *testing.T) {
	ds := demoData(t)
	sharded, err := BuildSharded(ds.Vectors, ds.Dim, 3, WithSeed(24))
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < ds.NQ(); qi++ {
		q := ds.Query(qi)
		nbrs, st, err := sharded.SearchWithStats(q, 5, WithMaxCandidates(60))
		if err != nil {
			t.Fatal(err)
		}
		var want SearchStats
		for _, shard := range sharded.shards {
			_, sst, err := shard.SearchWithStats(q, 5, WithMaxCandidates(60))
			if err != nil {
				t.Fatal(err)
			}
			want.merge(sst)
		}
		if got := workOf(st); got != workOf(want) {
			t.Fatalf("query %d: merged stats %+v != per-shard sum %+v", qi, got, want)
		}
		plain, err := sharded.Search(q, 5, WithMaxCandidates(60))
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain {
			if plain[i] != nbrs[i] {
				t.Fatalf("query %d: SearchWithStats neighbors diverge from Search", qi)
			}
		}
	}
}

func TestSearchBatchWithStatsPerQuery(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(25))
	if err != nil {
		t.Fatal(err)
	}
	flat := make([]float32, 0, ds.NQ()*ds.Dim)
	for qi := 0; qi < ds.NQ(); qi++ {
		flat = append(flat, ds.Query(qi)...)
	}
	results, err := ix.SearchBatchWithStats(flat, 4, WithMaxCandidates(80))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != ds.NQ() {
		t.Fatalf("%d results", len(results))
	}
	for qi, res := range results {
		if res.Err != nil {
			t.Fatalf("query %d: %v", qi, res.Err)
		}
		_, want, err := ix.SearchWithStats(ds.Query(qi), 4, WithMaxCandidates(80))
		if err != nil {
			t.Fatal(err)
		}
		if got := workOf(res.Stats); got != workOf(want) {
			t.Fatalf("query %d: batch stats %+v != single %+v", qi, got, want)
		}
	}
}

func TestSearchBatchStructuralErrors(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(26))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.SearchBatchWithStats(ds.Query(0)[:3], 5); err == nil {
		t.Fatal("bad block length accepted")
	}
	if _, err := ix.SearchBatchWithStats(ds.Query(0), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	// An empty batch is structurally fine.
	results, err := ix.SearchBatchWithStats(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("empty batch gave %d results", len(results))
	}
}

func TestStatsLifecycleCounters(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(27))
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.BuildTime <= 0 {
		t.Fatalf("BuildTime = %v", st.BuildTime)
	}
	if st.Adds != 0 || st.MethodRebuilds != 0 {
		t.Fatalf("fresh index lifecycle: %+v", st)
	}
	for i := 0; i < 3; i++ {
		if _, err := ix.Add(ds.Query(0)); err != nil {
			t.Fatal(err)
		}
	}
	// The rebuild is lazy: it happens on the next search, once, however
	// many Adds preceded it.
	if _, err := ix.Search(ds.Query(1), 3, WithMaxCandidates(50)); err != nil {
		t.Fatal(err)
	}
	st = ix.Stats()
	if st.Adds != 3 {
		t.Fatalf("Adds = %d, want 3", st.Adds)
	}
	if st.MethodRebuilds != 1 {
		t.Fatalf("MethodRebuilds = %d, want 1", st.MethodRebuilds)
	}
}
